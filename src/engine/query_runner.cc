#include "engine/query_runner.h"

#include <chrono>
#include <functional>
#include <utility>

#include "datagen/tpch_gen.h"
#include "engine/stage_exec.h"

namespace xdbft::engine {

using exec::AggFunc;
using exec::AggSpec;
using exec::Expr;
using exec::Table;
using exec::Value;
using exec::VecNodePtr;
using exec::VFilter;
using exec::VHashAggregate;
using exec::VHashJoin;
using exec::VProject;
using exec::VScan;
using exec::VSort;

using catalog::TpchTable;

namespace {

using params::kQ1ShipdateCutoff;
using params::kQ3Date;
using params::kQ3Segment;
using params::kQ5Region;
using params::kQ5YearEnd;
using params::kQ5YearStart;

}  // namespace

QueryRunner::QueryRunner(const PartitionedDatabase* db, ExecOptions opts)
    : db_(db), opts_(opts) {
  if (opts_.mode == ExecMode::kVectorized && opts_.num_threads > 1) {
    // num_threads - 1 workers: the pipeline's calling thread helps.
    pool_ = std::make_unique<TaskPool>(opts_.num_threads - 1);
  }
}

Result<Table> QueryRunner::Run(const exec::VecNodePtr& plan) const {
  if (!opts_.profile) {
    if (opts_.mode == ExecMode::kRow) {
      const exec::OperatorPtr op = exec::ToOperator(plan);
      return exec::Drain(op.get());
    }
    exec::VecExecOptions vopts;
    vopts.num_threads = opts_.num_threads;
    vopts.morsel_rows = opts_.morsel_rows;
    vopts.pool = pool_.get();
    vopts.trace = opts_.trace;
    vopts.trace_lane_base = opts_.trace_lane_base;
    return exec::ExecuteVectorized(plan, vopts);
  }
  obs::QueryProfile qp;
  qp.engine = opts_.mode == ExecMode::kRow ? "row" : "vectorized";
  const auto start = std::chrono::steady_clock::now();
  Result<Table> result = Table{};
  if (opts_.mode == ExecMode::kRow) {
    const exec::OperatorPtr op = exec::ToOperatorProfiled(plan, &qp.root);
    result = exec::Drain(op.get());
  } else {
    exec::VecExecOptions vopts;
    vopts.num_threads = opts_.num_threads;
    vopts.morsel_rows = opts_.morsel_rows;
    vopts.pool = pool_.get();
    vopts.trace = opts_.trace;
    vopts.trace_lane_base = opts_.trace_lane_base;
    vopts.profile = &qp.root;
    result = exec::ExecuteVectorized(plan, vopts);
  }
  qp.seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  {
    const std::lock_guard<std::mutex> lock(profile_mu_);
    pending_profiles_.push_back(std::move(qp));
  }
  return result;
}

void QueryRunner::FlushStageProfiles(const std::string& label,
                                     QueryExecution* out) const {
  if (!opts_.profile) return;
  std::vector<obs::QueryProfile> batch;
  {
    const std::lock_guard<std::mutex> lock(profile_mu_);
    batch.swap(pending_profiles_);
  }
  if (batch.empty()) return;
  obs::QueryProfile merged = std::move(batch[0]);
  for (size_t i = 1; i < batch.size(); ++i) {
    if (!merged.MergeFrom(batch[i]).ok()) {
      // A stage ran differently-shaped plans; keep the odd one out as its
      // own labeled profile rather than dropping it.
      batch[i].label = label;
      out->stage_profiles.push_back(std::move(batch[i]));
    }
  }
  merged.label = label;
  out->stage_profiles.push_back(std::move(merged));
}

Result<QueryExecution> QueryRunner::RunQ1() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  const int n = db_->num_nodes;
  QueryExecution out;

  // Stage 1: partial aggregation per partition (scan+filter pipelined).
  std::vector<Table> partials;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& part = lineitem.partitions[static_cast<size_t>(p)];
            const auto& schema = part.schema;
            XDBFT_ASSIGN_OR_RETURN(auto shipdate,
                                   Expr::Col(schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(auto qty,
                                   Expr::Col(schema, "l_quantity"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(schema, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(const int rf,
                                   schema.Find("l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int ls,
                                   schema.Find("l_linestatus"));
            auto plan = VFilter(
                VScan(&part),
                exec::Le(shipdate, Expr::Lit(Value(kQ1ShipdateCutoff))));
            plan = VHashAggregate(
                std::move(plan), {rf, ls},
                {{AggFunc::kSum, qty, "sum_qty"},
                 {AggFunc::kSum, price, "sum_price"},
                 {AggFunc::kCount, nullptr, "count_order"}});
            return Run(plan);
          },
          &partials));
  RecordStage(&out, "PartialAgg(L)", secs, partials);
  FlushStageProfiles("PartialAgg(L)", &out);

  // Stage 2: merge partials globally.
  const auto start = std::chrono::steady_clock::now();
  Table merged = ConcatTables(partials);
  {
    const auto& schema = merged.schema;
    XDBFT_ASSIGN_OR_RETURN(auto sum_qty, Expr::Col(schema, "sum_qty"));
    XDBFT_ASSIGN_OR_RETURN(auto sum_price, Expr::Col(schema, "sum_price"));
    XDBFT_ASSIGN_OR_RETURN(auto cnt, Expr::Col(schema, "count_order"));
    auto plan = VHashAggregate(
        VScan(&merged), {0, 1},
        {{AggFunc::kSum, sum_qty, "sum_qty"},
         {AggFunc::kSum, sum_price, "sum_price"},
         {AggFunc::kSum, cnt, "count_order"}});
    plan = VSort(std::move(plan), {0, 1}, {true, true});
    XDBFT_ASSIGN_OR_RETURN(out.result, Run(plan));
  }
  const auto end = std::chrono::steady_clock::now();
  RecordStage(&out, "FinalAgg",
              std::chrono::duration<double>(end - start).count(),
              {out.result});
  FlushStageProfiles("FinalAgg", &out);
  return out;
}

Result<QueryExecution> QueryRunner::RunQ3() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& customer = db_->table(TpchTable::kCustomer);
  const auto& orders = db_->table(TpchTable::kOrders);
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  QueryExecution out;

  // Stage 1: sigma(C) join sigma(O) on custkey per partition. CUSTOMER is
  // replicated (RREF), ORDERS is the partitioned probe side.
  std::vector<Table> co;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& creplica =
                customer.partitions[static_cast<size_t>(p)];
            const Table& opart = orders.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto seg,
                                   Expr::Col(creplica.schema,
                                             "c_mktsegment"));
            XDBFT_ASSIGN_OR_RETURN(const int ckey,
                                   creplica.schema.Find("c_custkey"));
            auto build = VFilter(
                VScan(&creplica),
                exec::Eq(seg, Expr::Lit(Value(kQ3Segment))));
            XDBFT_ASSIGN_OR_RETURN(auto odate,
                                   Expr::Col(opart.schema, "o_orderdate"));
            XDBFT_ASSIGN_OR_RETURN(const int okey_cust,
                                   opart.schema.Find("o_custkey"));
            auto probe = VFilter(
                VScan(&opart),
                exec::Lt(odate, Expr::Lit(Value(kQ3Date))));
            auto join = VHashJoin(std::move(build), std::move(probe),
                                  {ckey}, {okey_cust});
            // Keep (o_orderkey, o_orderdate).
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(auto okey, Expr::Col(js, "o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto odate2,
                                   Expr::Col(js, "o_orderdate"));
            auto proj = VProject(std::move(join), {okey, odate2},
                                 {"o_orderkey", "o_orderdate"});
            return Run(proj);
          },
          &co));
  RecordStage(&out, "Join(C,O)", secs, co);
  FlushStageProfiles("Join(C,O)", &out);

  // Stage 2: join LINEITEM on orderkey (co-partitioned: local join).
  std::vector<Table> col;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& build_t = co[static_cast<size_t>(p)];
            const Table& lpart =
                lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int bokey,
                                   build_t.schema.Find("o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto sdate,
                                   Expr::Col(lpart.schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(const int lokey,
                                   lpart.schema.Find("l_orderkey"));
            auto probe = VFilter(
                VScan(&lpart),
                exec::Gt(sdate, Expr::Lit(Value(kQ3Date))));
            auto join = VHashJoin(VScan(&build_t), std::move(probe),
                                  {bokey}, {lokey});
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(auto okey, Expr::Col(js, "l_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto odate,
                                   Expr::Col(js, "o_orderdate"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(js, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(auto disc,
                                   Expr::Col(js, "l_discount"));
            auto revenue = price * (Expr::Lit(Value(1.0)) - disc);
            auto proj = VProject(
                std::move(join), {okey, odate, revenue},
                {"o_orderkey", "o_orderdate", "revenue"});
            return Run(proj);
          },
          &col));
  RecordStage(&out, "Join(CO,L)", secs, col);
  FlushStageProfiles("Join(CO,L)", &out);

  // Stage 3: aggregate per orderkey (groups are partition-local thanks to
  // orderkey co-partitioning).
  std::vector<Table> aggs;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& in = col[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto rev,
                                   Expr::Col(in.schema, "revenue"));
            auto plan = VHashAggregate(
                VScan(&in), {0, 1},
                {{AggFunc::kSum, rev, "revenue"}});
            return Run(plan);
          },
          &aggs));
  RecordStage(&out, "Agg(orderkey)", secs, aggs);
  FlushStageProfiles("Agg(orderkey)", &out);

  // Stage 4: global top-10 by revenue.
  const auto start = std::chrono::steady_clock::now();
  Table merged = ConcatTables(aggs);
  {
    XDBFT_ASSIGN_OR_RETURN(const int rev, merged.schema.Find("revenue"));
    auto plan = VSort(VScan(&merged), {rev}, {false}, 10);
    XDBFT_ASSIGN_OR_RETURN(out.result, Run(plan));
  }
  const auto end = std::chrono::steady_clock::now();
  RecordStage(&out, "TopK(revenue)",
              std::chrono::duration<double>(end - start).count(),
              {out.result});
  FlushStageProfiles("TopK(revenue)", &out);
  return out;
}

Result<QueryExecution> QueryRunner::RunQ5() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& region = db_->table(TpchTable::kRegion);
  const auto& nation = db_->table(TpchTable::kNation);
  const auto& customer = db_->table(TpchTable::kCustomer);
  const auto& orders = db_->table(TpchTable::kOrders);
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  const auto& supplier = db_->table(TpchTable::kSupplier);
  QueryExecution out;

  // Stage 1: sigma(R) join N — tiny, runs once.
  Table rn;
  {
    const auto start = std::chrono::steady_clock::now();
    const Table& rrep = region.partitions[0];
    const Table& nrep = nation.partitions[0];
    XDBFT_ASSIGN_OR_RETURN(auto rkey,
                           Expr::Col(rrep.schema, "r_regionkey"));
    auto build = VFilter(VScan(&rrep),
                         exec::Eq(rkey, Expr::Lit(Value(kQ5Region))));
    XDBFT_ASSIGN_OR_RETURN(const int rk, rrep.schema.Find("r_regionkey"));
    XDBFT_ASSIGN_OR_RETURN(const int nrk,
                           nrep.schema.Find("n_regionkey"));
    auto join = VHashJoin(std::move(build), VScan(&nrep), {rk}, {nrk});
    const auto& js = join->schema;
    XDBFT_ASSIGN_OR_RETURN(auto nkey, Expr::Col(js, "n_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
    auto proj = VProject(std::move(join), {nkey, nname},
                         {"n_nationkey", "n_name"});
    XDBFT_ASSIGN_OR_RETURN(rn, Run(proj));
    const auto end = std::chrono::steady_clock::now();
    RecordStage(&out, "Join1(R,N)",
                std::chrono::duration<double>(end - start).count(), {rn});
  FlushStageProfiles("Join1(R,N)", &out);
  }

  // Stage 2: join CUSTOMER (RREF slice per partition) on nationkey.
  std::vector<Table> rnc;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& crep = customer.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int ckey_col,
                                   crep.schema.Find("c_custkey"));
            const Table cslice = SliceReplica(crep, ckey_col, p, n);
            XDBFT_ASSIGN_OR_RETURN(const int nk,
                                   rn.schema.Find("n_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(const int cnk,
                                   cslice.schema.Find("c_nationkey"));
            auto join = VHashJoin(VScan(&rn), VScan(&cslice), {nk}, {cnk});
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(auto ckey, Expr::Col(js, "c_custkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
            auto proj = VProject(std::move(join), {ckey, cnat, nname},
                                 {"c_custkey", "c_nationkey", "n_name"});
            return Run(proj);
          },
          &rnc));
  RecordStage(&out, "Join2(RN,C)", secs, rnc);
  FlushStageProfiles("Join2(RN,C)", &out);

  // Stage 3: broadcast RNC (shuffle emulation) and join sigma(ORDERS) on
  // custkey per partition.
  Table rnc_all = ConcatTables(rnc);
  std::vector<Table> rnco;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& opart = orders.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto odate,
                                   Expr::Col(opart.schema, "o_orderdate"));
            auto probe = VFilter(
                VScan(&opart),
                exec::And(exec::Ge(odate, Expr::Lit(Value(kQ5YearStart))),
                          exec::Lt(odate, Expr::Lit(Value(kQ5YearEnd)))));
            XDBFT_ASSIGN_OR_RETURN(const int bkey,
                                   rnc_all.schema.Find("c_custkey"));
            XDBFT_ASSIGN_OR_RETURN(const int pkey,
                                   opart.schema.Find("o_custkey"));
            auto join = VHashJoin(VScan(&rnc_all), std::move(probe),
                                  {bkey}, {pkey});
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(auto okey, Expr::Col(js, "o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
            auto proj = VProject(std::move(join), {okey, cnat, nname},
                                 {"o_orderkey", "c_nationkey", "n_name"});
            return Run(proj);
          },
          &rnco));
  RecordStage(&out, "Join3(RNC,O)", secs, rnco);
  FlushStageProfiles("Join3(RNC,O)", &out);

  // Stage 4: join LINEITEM on orderkey (co-partitioned).
  std::vector<Table> rncol;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& build_t = rnco[static_cast<size_t>(p)];
            const Table& lpart =
                lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int bokey,
                                   build_t.schema.Find("o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(const int lokey,
                                   lpart.schema.Find("l_orderkey"));
            auto join = VHashJoin(VScan(&build_t), VScan(&lpart),
                                  {bokey}, {lokey});
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(auto skey, Expr::Col(js, "l_suppkey"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(js, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(auto disc, Expr::Col(js, "l_discount"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
            auto revenue = price * (Expr::Lit(Value(1.0)) - disc);
            auto proj = VProject(
                std::move(join), {skey, cnat, nname, revenue},
                {"l_suppkey", "c_nationkey", "n_name", "revenue"});
            return Run(proj);
          },
          &rncol));
  RecordStage(&out, "Join4(RNCO,L)", secs, rncol);
  FlushStageProfiles("Join4(RNCO,L)", &out);

  // Stage 5: join SUPPLIER on suppkey + supplier-nation filter.
  std::vector<Table> rncols;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& srep = supplier.partitions[static_cast<size_t>(p)];
            const Table& probe_t = rncol[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int skey,
                                   srep.schema.Find("s_suppkey"));
            XDBFT_ASSIGN_OR_RETURN(const int pkey,
                                   probe_t.schema.Find("l_suppkey"));
            auto join = VHashJoin(VScan(&srep), VScan(&probe_t),
                                  {skey}, {pkey});
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(auto snat,
                                   Expr::Col(js, "s_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            auto filt = VFilter(std::move(join), exec::Eq(snat, cnat));
            const auto& fs = filt->schema;
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(fs, "n_name"));
            XDBFT_ASSIGN_OR_RETURN(auto rev, Expr::Col(fs, "revenue"));
            auto proj = VProject(std::move(filt), {nname, rev},
                                 {"n_name", "revenue"});
            return Run(proj);
          },
          &rncols));
  RecordStage(&out, "Join5(RNCOL,S)", secs, rncols);
  FlushStageProfiles("Join5(RNCOL,S)", &out);

  // Stage 6: aggregate revenue per nation (partial + merge).
  const auto start = std::chrono::steady_clock::now();
  Table merged = ConcatTables(rncols);
  {
    XDBFT_ASSIGN_OR_RETURN(auto rev, Expr::Col(merged.schema, "revenue"));
    auto plan = VHashAggregate(VScan(&merged), {0},
                               {{AggFunc::kSum, rev, "revenue"}});
    XDBFT_ASSIGN_OR_RETURN(const int revc, plan->schema.Find("revenue"));
    plan = VSort(std::move(plan), {revc}, {false});
    XDBFT_ASSIGN_OR_RETURN(out.result, Run(plan));
  }
  const auto end = std::chrono::steady_clock::now();
  RecordStage(&out, "Agg(nation)",
              std::chrono::duration<double>(end - start).count(),
              {out.result});
  FlushStageProfiles("Agg(nation)", &out);
  return out;
}

}  // namespace xdbft::engine
