// StagePlan: an executable DAG of *stages* (sub-plans), the unit at which
// the paper's XDB middleware splits queries for fault-tolerant execution.
// Each stage runs either partition-parallel (one task per partition, over
// co-partitioned inputs) or globally (one task consuming the concatenated
// outputs of its producers — a merge/exchange point).
//
// The FaultTolerantExecutor (ft_executor.h) executes a StagePlan under a
// MaterializationConfig with injected failures and real recovery: outputs
// of materialized stages survive node failures, everything else is
// recomputed from the last materialized ancestors.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/exec_mode.h"
#include "engine/partitioned_table.h"
#include "plan/plan.h"

namespace xdbft::engine {

/// \brief How a consumer task reads a producer stage's output.
enum class EdgeMode : int {
  /// Consumer partition p reads producer partition p (co-partitioned
  /// data flow; the only mode meaningful for global producers).
  kSamePartition,
  /// Consumer task reads the concatenation of every producer partition
  /// (broadcast for partitioned consumers; merge for global consumers).
  kBroadcast,
  /// Hash repartitioning: consumer partition p reads, from every producer
  /// partition, the rows whose shuffle-key column hashes to p. The
  /// operation whose output many PDEs always materialize (paper §2.1).
  kShuffle,
};

/// \brief One input edge of a stage.
struct StageInput {
  int stage = -1;
  EdgeMode mode = EdgeMode::kSamePartition;
  /// Column of the producer's output to hash on (kShuffle only).
  int shuffle_key = -1;

  StageInput() = default;
  StageInput(int s) : stage(s) {}  // NOLINT(runtime/explicit)
  StageInput(int s, EdgeMode m, int key = -1)
      : stage(s), mode(m), shuffle_key(key) {}
};

/// \brief One stage of an executable stage DAG.
struct Stage {
  std::string label;
  plan::OpType type = plan::OpType::kMapUdf;
  /// True: runs once on the coordinator. Inputs from partitioned
  /// producers are concatenated regardless of their edge mode.
  bool global = false;
  /// Producer edges.
  std::vector<StageInput> inputs;
  /// Executes one task: `partition` is -1 for global stages; `inputs[i]`
  /// is the table this task reads from producer edge i (resolved per the
  /// edge mode). Must be thread-safe across partitions.
  std::function<Result<exec::Table>(
      int partition, const std::vector<const exec::Table*>& inputs)>
      run;
};

/// \brief An executable stage DAG over a partitioned database.
class StagePlan {
 public:
  explicit StagePlan(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  int AddStage(Stage stage);
  int num_stages() const { return static_cast<int>(stages_.size()); }
  const Stage& stage(int i) const { return stages_[static_cast<size_t>(i)]; }

  /// \brief Structural checks (inputs reference earlier stages, runnables
  /// set, at least one stage).
  Status Validate() const;

  /// \brief The producer tasks whose outputs task (stage, slot) reads,
  /// given `num_partitions` partitions, as (producer stage, producer slot)
  /// pairs: global producers contribute slot 0, broadcast/shuffle edges
  /// (and any edge into a global consumer) every partition, and
  /// same-partition edges the consumer's own slot. This is the dependency
  /// relation the FaultTolerantExecutor schedules (and recovers) by.
  std::vector<std::pair<int, int>> TaskInputs(int stage, int slot,
                                              int num_partitions) const;

  /// \brief A cost-less plan::Plan mirror of the stage structure, used to
  /// build MaterializationConfigs for execution (stage index == operator
  /// id). Global stages are bound kAlwaysMaterialize: they run on the
  /// coordinator and their (typically tiny) outputs are always kept.
  plan::Plan ToPlanSkeleton() const;

 private:
  std::string name_;
  std::vector<Stage> stages_;
};

/// \brief Stage-plan builders for the benchmark queries (same semantics as
/// QueryRunner::RunQ1/RunQ5; the independent implementations cross-check
/// each other in tests). The database must outlive the returned plan.
/// `opts.mode` selects the engine each stage task runs on; within a stage
/// task morsel execution is always serial (opts.num_threads is ignored)
/// because the FT executor already runs tasks inside its own pool.
StagePlan MakeQ1StagePlan(const PartitionedDatabase& db,
                          ExecOptions opts = {});
StagePlan MakeQ5StagePlan(const PartitionedDatabase& db,
                          ExecOptions opts = {});

/// \brief Revenue per customer (top 10): joins LINEITEM with ORDERS
/// (co-partitioned), then hash-repartitions on custkey (an EdgeMode::
/// kShuffle edge) before aggregating — the shuffle demo plan.
StagePlan MakeCustomerRevenueStagePlan(const PartitionedDatabase& db,
                                       ExecOptions opts = {});

/// \brief Pipelined query shape: a LINEITEM scan feeding a chain of
/// `depth` same-partition filter stages, closed by a global aggregate.
/// Every chain stage's output is bulky relative to its compute — the
/// regime write-ahead lineage targets (a failure without WAL recomputes
/// the whole chain below the last materialization point; with WAL the
/// chain is replayed from the lineage log).
StagePlan MakeFilterChainStagePlan(const PartitionedDatabase& db, int depth,
                                   ExecOptions opts = {});

}  // namespace xdbft::engine
