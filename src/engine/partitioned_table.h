// Partitioned storage of the in-process engine, mirroring the paper's XDB
// layout (§5.1): hash partitioning (LINEITEM/ORDERS co-partitioned on
// orderkey), replication (NATION/REGION) and RREF partial replication
// (CUSTOMER/SUPPLIER/PART/PARTSUPP) — simulated conservatively as full
// replication, which preserves the property RREF provides: joins against
// these tables never require a shuffle.
#pragma once

#include <map>
#include <vector>

#include "catalog/tpch_catalog.h"
#include "common/result.h"
#include "datagen/tpch_gen.h"
#include "exec/operators.h"

namespace xdbft::engine {

/// \brief One logical table split/replicated across the cluster's nodes.
struct PartitionedTable {
  catalog::Partitioning partitioning = catalog::Partitioning::kReplicated;
  /// Index of the hash-partitioning key column (kHash only).
  int key_column = -1;
  /// One Table per node. Replicated tables hold identical copies.
  std::vector<exec::Table> partitions;

  size_t num_partitions() const { return partitions.size(); }
  /// \brief Rows across partitions (counts each replica for replicated
  /// tables).
  size_t TotalRows() const;
  /// \brief Logical row count (replicas counted once).
  size_t LogicalRows() const;
};

/// \brief Split `table` into `num_partitions` parts.
Result<PartitionedTable> Partition(const exec::Table& table,
                                   catalog::Partitioning partitioning,
                                   const std::string& key_column,
                                   int num_partitions);

/// \brief A TPC-H database distributed over the cluster per §5.1.
struct PartitionedDatabase {
  int num_nodes = 0;
  std::map<catalog::TpchTable, PartitionedTable> tables;

  const PartitionedTable& table(catalog::TpchTable t) const {
    return tables.at(t);
  }
};

/// \brief Distribute a generated TPC-H database using the paper's layout.
Result<PartitionedDatabase> DistributeTpch(
    const datagen::TpchDatabase& db, int num_nodes);

}  // namespace xdbft::engine
