#include "engine/stage_plan.h"

#include "common/string_util.h"
#include "datagen/tpch_gen.h"
#include "engine/query_runner.h"
#include "engine/stage_exec.h"

namespace xdbft::engine {

using catalog::TpchTable;
using exec::AggFunc;
using exec::Expr;
using exec::Table;
using exec::Value;
using exec::VFilter;
using exec::VHashAggregate;
using exec::VHashJoin;
using exec::VProject;
using exec::VScan;
using exec::VSort;

int StagePlan::AddStage(Stage stage) {
  stages_.push_back(std::move(stage));
  return static_cast<int>(stages_.size()) - 1;
}

Status StagePlan::Validate() const {
  if (stages_.empty()) return Status::InvalidArgument("no stages");
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Stage& s = stages_[i];
    if (!s.run) {
      return Status::InvalidArgument(
          StrFormat("stage %zu has no runnable", i));
    }
    for (const StageInput& in : s.inputs) {
      if (in.stage < 0 || in.stage >= static_cast<int>(i)) {
        return Status::InvalidArgument(
            StrFormat("stage %zu has invalid input %d", i, in.stage));
      }
      if (in.mode == EdgeMode::kShuffle && in.shuffle_key < 0) {
        return Status::InvalidArgument(
            StrFormat("stage %zu: shuffle edge needs a key column", i));
      }
    }
  }
  return Status::OK();
}

std::vector<std::pair<int, int>> StagePlan::TaskInputs(
    int stage, int slot, int num_partitions) const {
  std::vector<std::pair<int, int>> deps;
  const Stage& s = stages_[static_cast<size_t>(stage)];
  for (const StageInput& in : s.inputs) {
    const Stage& producer = stages_[static_cast<size_t>(in.stage)];
    if (producer.global) {
      deps.emplace_back(in.stage, 0);
    } else if (s.global || in.mode != EdgeMode::kSamePartition) {
      for (int q = 0; q < num_partitions; ++q) deps.emplace_back(in.stage, q);
    } else {
      deps.emplace_back(in.stage, slot);
    }
  }
  return deps;
}

plan::Plan StagePlan::ToPlanSkeleton() const {
  plan::Plan p(name_);
  for (const auto& s : stages_) {
    plan::PlanNode node;
    node.type = s.type;
    node.label = s.label;
    for (const StageInput& in : s.inputs) node.inputs.push_back(in.stage);
    node.runtime_cost = 0.0;
    node.materialize_cost = 0.0;
    if (s.global) {
      node.constraint = plan::MatConstraint::kAlwaysMaterialize;
    }
    p.AddNode(std::move(node));
  }
  return p;
}

namespace {

// Runs one stage task's plan on the engine selected by `opts`. Stage tasks
// execute inside the FT executor's pool, so morsel execution stays serial
// regardless of opts.num_threads (ParallelForEach is not reentrant).
Result<Table> RunStageNode(const ExecOptions& opts,
                           const exec::VecNodePtr& plan) {
  exec::VecExecOptions vopts;
  vopts.num_threads = 1;
  vopts.morsel_rows = opts.morsel_rows;
  return exec::RunPlan(plan, opts.mode == ExecMode::kVectorized, vopts);
}

}  // namespace

StagePlan MakeQ1StagePlan(const PartitionedDatabase& db, ExecOptions opts) {
  StagePlan plan("Q1-stages");
  const auto* lineitem = &db.table(TpchTable::kLineitem);

  Stage partial;
  partial.label = "PartialAgg(L)";
  partial.type = plan::OpType::kHashAggregate;
  partial.run = [lineitem, opts](int partition,
                                 const std::vector<const Table*>&)
      -> Result<Table> {
    const Table& part =
        lineitem->partitions[static_cast<size_t>(partition)];
    XDBFT_ASSIGN_OR_RETURN(auto shipdate,
                           Expr::Col(part.schema, "l_shipdate"));
    XDBFT_ASSIGN_OR_RETURN(auto qty, Expr::Col(part.schema, "l_quantity"));
    XDBFT_ASSIGN_OR_RETURN(auto price,
                           Expr::Col(part.schema, "l_extendedprice"));
    XDBFT_ASSIGN_OR_RETURN(const int rf, part.schema.Find("l_returnflag"));
    XDBFT_ASSIGN_OR_RETURN(const int ls, part.schema.Find("l_linestatus"));
    auto node = VFilter(
        VScan(&part),
        exec::Le(shipdate, Expr::Lit(Value(params::kQ1ShipdateCutoff))));
    node = VHashAggregate(std::move(node), {rf, ls},
                          {{AggFunc::kSum, qty, "sum_qty"},
                           {AggFunc::kSum, price, "sum_price"},
                           {AggFunc::kCount, nullptr, "count_order"}});
    return RunStageNode(opts, node);
  };
  const int s0 = plan.AddStage(std::move(partial));

  Stage merge;
  merge.label = "FinalAgg";
  merge.type = plan::OpType::kHashAggregate;
  merge.global = true;
  merge.inputs = {s0};
  merge.run = [opts](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& merged = *inputs[0];
    XDBFT_ASSIGN_OR_RETURN(auto sum_qty,
                           Expr::Col(merged.schema, "sum_qty"));
    XDBFT_ASSIGN_OR_RETURN(auto sum_price,
                           Expr::Col(merged.schema, "sum_price"));
    XDBFT_ASSIGN_OR_RETURN(auto cnt,
                           Expr::Col(merged.schema, "count_order"));
    auto node = VHashAggregate(VScan(&merged), {0, 1},
                               {{AggFunc::kSum, sum_qty, "sum_qty"},
                                {AggFunc::kSum, sum_price, "sum_price"},
                                {AggFunc::kSum, cnt, "count_order"}});
    node = VSort(std::move(node), {0, 1}, {true, true});
    return RunStageNode(opts, node);
  };
  plan.AddStage(std::move(merge));
  return plan;
}

StagePlan MakeCustomerRevenueStagePlan(const PartitionedDatabase& db,
                                       ExecOptions opts) {
  StagePlan plan("customer-revenue");
  const auto* orders = &db.table(TpchTable::kOrders);
  const auto* lineitem = &db.table(TpchTable::kLineitem);

  // Stage 0: LINEITEM join ORDERS on orderkey (co-partitioned, local),
  // projecting (o_custkey, revenue).
  Stage join;
  join.label = "Join(L,O)";
  join.type = plan::OpType::kHashJoin;
  join.run = [orders, lineitem, opts](int partition,
                                      const std::vector<const Table*>&)
      -> Result<Table> {
    const Table& opart = orders->partitions[static_cast<size_t>(partition)];
    const Table& lpart =
        lineitem->partitions[static_cast<size_t>(partition)];
    XDBFT_ASSIGN_OR_RETURN(const int okey, opart.schema.Find("o_orderkey"));
    XDBFT_ASSIGN_OR_RETURN(const int lokey,
                           lpart.schema.Find("l_orderkey"));
    auto j = VHashJoin(VScan(&opart), VScan(&lpart), {okey}, {lokey});
    const auto& js = j->schema;
    XDBFT_ASSIGN_OR_RETURN(auto ckey, Expr::Col(js, "o_custkey"));
    XDBFT_ASSIGN_OR_RETURN(auto price, Expr::Col(js, "l_extendedprice"));
    XDBFT_ASSIGN_OR_RETURN(auto disc, Expr::Col(js, "l_discount"));
    auto revenue = price * (Expr::Lit(Value(1.0)) - disc);
    auto proj = VProject(std::move(j), {ckey, revenue},
                         {"o_custkey", "revenue"});
    return RunStageNode(opts, proj);
  };
  const int s_join = plan.AddStage(std::move(join));

  // Stage 1: shuffle on custkey (column 0 of stage 0's output), then
  // aggregate — each partition owns a disjoint custkey range, so the
  // groups are complete.
  Stage agg;
  agg.label = "ShuffleAgg(custkey)";
  agg.type = plan::OpType::kHashAggregate;
  agg.inputs = {StageInput(s_join, EdgeMode::kShuffle, /*key=*/0)};
  agg.run = [opts](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& in = *inputs[0];
    XDBFT_ASSIGN_OR_RETURN(auto rev, Expr::Col(in.schema, "revenue"));
    auto node = VHashAggregate(VScan(&in), {0},
                               {{AggFunc::kSum, rev, "revenue"}});
    return RunStageNode(opts, node);
  };
  const int s_agg = plan.AddStage(std::move(agg));

  // Stage 2 (global): top-10 customers by revenue.
  Stage top;
  top.label = "TopK(revenue)";
  top.type = plan::OpType::kSort;
  top.global = true;
  top.inputs = {s_agg};
  top.run = [opts](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& merged = *inputs[0];
    XDBFT_ASSIGN_OR_RETURN(const int rev, merged.schema.Find("revenue"));
    auto node = VSort(VScan(&merged), {rev}, {false}, 10);
    return RunStageNode(opts, node);
  };
  plan.AddStage(std::move(top));
  return plan;
}

StagePlan MakeFilterChainStagePlan(const PartitionedDatabase& db, int depth,
                                   ExecOptions opts) {
  StagePlan plan("filter-chain");
  const auto* lineitem = &db.table(TpchTable::kLineitem);

  // Stage 0: scan + project the two columns the chain consumes.
  Stage scan;
  scan.label = "ScanProject(L)";
  scan.type = plan::OpType::kTableScan;
  scan.run = [lineitem, opts](int partition,
                              const std::vector<const Table*>&)
      -> Result<Table> {
    const Table& part =
        lineitem->partitions[static_cast<size_t>(partition)];
    XDBFT_ASSIGN_OR_RETURN(auto qty, Expr::Col(part.schema, "l_quantity"));
    XDBFT_ASSIGN_OR_RETURN(auto price,
                           Expr::Col(part.schema, "l_extendedprice"));
    auto proj = VProject(VScan(&part), {qty, price},
                         {"l_quantity", "l_extendedprice"});
    return RunStageNode(opts, proj);
  };
  int prev = plan.AddStage(std::move(scan));

  // Chain stages: each trims the quantity range a little further, so
  // every intermediate stays bulky (the WAL-relevant shape).
  for (int i = 0; i < depth; ++i) {
    Stage f;
    f.label = "Filter" + StrFormat("%d", i);
    f.type = plan::OpType::kFilter;
    f.inputs = {prev};
    const double cutoff = 50.0 - 1.0 * i;
    f.run = [cutoff, opts](int, const std::vector<const Table*>& inputs)
        -> Result<Table> {
      const Table& in = *inputs[0];
      XDBFT_ASSIGN_OR_RETURN(auto qty, Expr::Col(in.schema, "l_quantity"));
      auto node =
          VFilter(VScan(&in), exec::Le(qty, Expr::Lit(Value(cutoff))));
      return RunStageNode(opts, node);
    };
    prev = plan.AddStage(std::move(f));
  }

  // Final global stage: revenue per surviving quantity value, sorted.
  Stage agg;
  agg.label = "Agg(quantity)";
  agg.type = plan::OpType::kHashAggregate;
  agg.global = true;
  agg.inputs = {prev};
  agg.run = [opts](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& merged = *inputs[0];
    XDBFT_ASSIGN_OR_RETURN(auto price,
                           Expr::Col(merged.schema, "l_extendedprice"));
    auto node = VHashAggregate(VScan(&merged), {0},
                               {{AggFunc::kSum, price, "revenue"},
                                {AggFunc::kCount, nullptr, "cnt"}});
    node = VSort(std::move(node), {0}, {true});
    return RunStageNode(opts, node);
  };
  plan.AddStage(std::move(agg));
  return plan;
}

StagePlan MakeQ5StagePlan(const PartitionedDatabase& db, ExecOptions opts) {
  StagePlan plan("Q5-stages");
  const int n = db.num_nodes;
  const auto* region = &db.table(TpchTable::kRegion);
  const auto* nation = &db.table(TpchTable::kNation);
  const auto* customer = &db.table(TpchTable::kCustomer);
  const auto* orders = &db.table(TpchTable::kOrders);
  const auto* lineitem = &db.table(TpchTable::kLineitem);
  const auto* supplier = &db.table(TpchTable::kSupplier);

  // Stage 0 (global): sigma(R) join N.
  Stage rn;
  rn.label = "Join1(R,N)";
  rn.type = plan::OpType::kHashJoin;
  rn.global = true;
  rn.run = [region, nation, opts](int, const std::vector<const Table*>&)
      -> Result<Table> {
    const Table& rrep = region->partitions[0];
    const Table& nrep = nation->partitions[0];
    XDBFT_ASSIGN_OR_RETURN(auto rkey, Expr::Col(rrep.schema,
                                                "r_regionkey"));
    auto build = VFilter(
        VScan(&rrep),
        exec::Eq(rkey, Expr::Lit(Value(params::kQ5Region))));
    XDBFT_ASSIGN_OR_RETURN(const int rk, rrep.schema.Find("r_regionkey"));
    XDBFT_ASSIGN_OR_RETURN(const int nrk, nrep.schema.Find("n_regionkey"));
    auto join = VHashJoin(std::move(build), VScan(&nrep), {rk}, {nrk});
    const auto& js = join->schema;
    XDBFT_ASSIGN_OR_RETURN(auto nkey, Expr::Col(js, "n_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
    auto proj = VProject(std::move(join), {nkey, nname},
                         {"n_nationkey", "n_name"});
    return RunStageNode(opts, proj);
  };
  const int s_rn = plan.AddStage(std::move(rn));

  // Stage 1: join CUSTOMER slice on nationkey.
  Stage rnc;
  rnc.label = "Join2(RN,C)";
  rnc.type = plan::OpType::kHashJoin;
  rnc.inputs = {s_rn};
  rnc.run = [customer, n, opts](int partition,
                                const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& rn_table = *inputs[0];
    const Table& crep = customer->partitions[static_cast<size_t>(partition)];
    XDBFT_ASSIGN_OR_RETURN(const int ckey_col,
                           crep.schema.Find("c_custkey"));
    const Table cslice = SliceReplica(crep, ckey_col, partition, n);
    XDBFT_ASSIGN_OR_RETURN(const int nk,
                           rn_table.schema.Find("n_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(const int cnk, cslice.schema.Find("c_nationkey"));
    auto join = VHashJoin(VScan(&rn_table), VScan(&cslice), {nk}, {cnk});
    const auto& js = join->schema;
    XDBFT_ASSIGN_OR_RETURN(auto ckey, Expr::Col(js, "c_custkey"));
    XDBFT_ASSIGN_OR_RETURN(auto cnat, Expr::Col(js, "c_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
    auto proj = VProject(std::move(join), {ckey, cnat, nname},
                         {"c_custkey", "c_nationkey", "n_name"});
    return RunStageNode(opts, proj);
  };
  const int s_rnc = plan.AddStage(std::move(rnc));

  // Stage 2 (global): broadcast/exchange of the customer side.
  Stage bcast;
  bcast.label = "Broadcast(RNC)";
  bcast.type = plan::OpType::kRepartition;
  bcast.global = true;
  bcast.inputs = {s_rnc};
  bcast.run = [](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    return *inputs[0];  // concatenation already done by the executor
  };
  const int s_bcast = plan.AddStage(std::move(bcast));

  // Stage 3: join sigma(ORDERS) on custkey.
  Stage rnco;
  rnco.label = "Join3(RNC,O)";
  rnco.type = plan::OpType::kHashJoin;
  rnco.inputs = {s_bcast};
  rnco.run = [orders, opts](int partition,
                            const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& rnc_all = *inputs[0];
    const Table& opart = orders->partitions[static_cast<size_t>(partition)];
    XDBFT_ASSIGN_OR_RETURN(auto odate,
                           Expr::Col(opart.schema, "o_orderdate"));
    auto probe = VFilter(
        VScan(&opart),
        exec::And(
            exec::Ge(odate, Expr::Lit(Value(params::kQ5YearStart))),
            exec::Lt(odate, Expr::Lit(Value(params::kQ5YearEnd)))));
    XDBFT_ASSIGN_OR_RETURN(const int bkey,
                           rnc_all.schema.Find("c_custkey"));
    XDBFT_ASSIGN_OR_RETURN(const int pkey, opart.schema.Find("o_custkey"));
    auto join = VHashJoin(VScan(&rnc_all), std::move(probe), {bkey},
                          {pkey});
    const auto& js = join->schema;
    XDBFT_ASSIGN_OR_RETURN(auto okey, Expr::Col(js, "o_orderkey"));
    XDBFT_ASSIGN_OR_RETURN(auto cnat, Expr::Col(js, "c_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
    auto proj = VProject(std::move(join), {okey, cnat, nname},
                         {"o_orderkey", "c_nationkey", "n_name"});
    return RunStageNode(opts, proj);
  };
  const int s_rnco = plan.AddStage(std::move(rnco));

  // Stage 4: join LINEITEM on orderkey (co-partitioned).
  Stage rncol;
  rncol.label = "Join4(RNCO,L)";
  rncol.type = plan::OpType::kHashJoin;
  rncol.inputs = {s_rnco};
  rncol.run = [lineitem, opts](int partition,
                               const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& build_t = *inputs[0];
    const Table& lpart =
        lineitem->partitions[static_cast<size_t>(partition)];
    XDBFT_ASSIGN_OR_RETURN(const int bokey,
                           build_t.schema.Find("o_orderkey"));
    XDBFT_ASSIGN_OR_RETURN(const int lokey,
                           lpart.schema.Find("l_orderkey"));
    auto join = VHashJoin(VScan(&build_t), VScan(&lpart), {bokey},
                          {lokey});
    const auto& js = join->schema;
    XDBFT_ASSIGN_OR_RETURN(auto skey, Expr::Col(js, "l_suppkey"));
    XDBFT_ASSIGN_OR_RETURN(auto price, Expr::Col(js, "l_extendedprice"));
    XDBFT_ASSIGN_OR_RETURN(auto disc, Expr::Col(js, "l_discount"));
    XDBFT_ASSIGN_OR_RETURN(auto cnat, Expr::Col(js, "c_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
    auto revenue = price * (Expr::Lit(Value(1.0)) - disc);
    auto proj = VProject(std::move(join), {skey, cnat, nname, revenue},
                         {"l_suppkey", "c_nationkey", "n_name",
                          "revenue"});
    return RunStageNode(opts, proj);
  };
  const int s_rncol = plan.AddStage(std::move(rncol));

  // Stage 5: join SUPPLIER + nation filter.
  Stage rncols;
  rncols.label = "Join5(RNCOL,S)";
  rncols.type = plan::OpType::kHashJoin;
  rncols.inputs = {s_rncol};
  rncols.run = [supplier, opts](int partition,
                                const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& probe_t = *inputs[0];
    const Table& srep =
        supplier->partitions[static_cast<size_t>(partition)];
    XDBFT_ASSIGN_OR_RETURN(const int skey, srep.schema.Find("s_suppkey"));
    XDBFT_ASSIGN_OR_RETURN(const int pkey,
                           probe_t.schema.Find("l_suppkey"));
    auto join = VHashJoin(VScan(&srep), VScan(&probe_t), {skey}, {pkey});
    const auto& js = join->schema;
    XDBFT_ASSIGN_OR_RETURN(auto snat, Expr::Col(js, "s_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(auto cnat, Expr::Col(js, "c_nationkey"));
    auto filt = VFilter(std::move(join), exec::Eq(snat, cnat));
    const auto& fs = filt->schema;
    XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(fs, "n_name"));
    XDBFT_ASSIGN_OR_RETURN(auto rev, Expr::Col(fs, "revenue"));
    auto proj = VProject(std::move(filt), {nname, rev},
                         {"n_name", "revenue"});
    return RunStageNode(opts, proj);
  };
  const int s_rncols = plan.AddStage(std::move(rncols));

  // Stage 6 (global): final aggregation by nation.
  Stage agg;
  agg.label = "Agg(nation)";
  agg.type = plan::OpType::kHashAggregate;
  agg.global = true;
  agg.inputs = {s_rncols};
  agg.run = [opts](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& merged = *inputs[0];
    XDBFT_ASSIGN_OR_RETURN(auto rev, Expr::Col(merged.schema, "revenue"));
    auto node = VHashAggregate(VScan(&merged), {0},
                               {{AggFunc::kSum, rev, "revenue"}});
    XDBFT_ASSIGN_OR_RETURN(const int revc, node->schema.Find("revenue"));
    node = VSort(std::move(node), {revc}, {false});
    return RunStageNode(opts, node);
  };
  plan.AddStage(std::move(agg));
  return plan;
}

}  // namespace xdbft::engine
