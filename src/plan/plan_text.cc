#include "plan/plan_text.h"

#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace xdbft::plan {

namespace {

const char* ConstraintName(MatConstraint c) {
  switch (c) {
    case MatConstraint::kFree:
      return "free";
    case MatConstraint::kNeverMaterialize:
      return "never";
    case MatConstraint::kAlwaysMaterialize:
      return "always";
  }
  return "?";
}

Result<MatConstraint> ConstraintFromString(const std::string& s) {
  if (s == "free") return MatConstraint::kFree;
  if (s == "never") return MatConstraint::kNeverMaterialize;
  if (s == "always") return MatConstraint::kAlwaysMaterialize;
  return Status::InvalidArgument("unknown constraint '" + s + "'");
}

// Serialize a double losslessly (shortest round-trip via %.17g).
std::string DoubleToText(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter representation when it round-trips.
  char short_buf[40];
  for (int prec = 1; prec < 17; ++prec) {
    std::snprintf(short_buf, sizeof(short_buf), "%.*g", prec, v);
    if (std::strtod(short_buf, nullptr) == v) return short_buf;
  }
  return buf;
}

// key=value extraction from a token like "tr=1.5".
Result<std::string> TokenValue(const std::string& token,
                               const std::string& key) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument("expected '" + prefix +
                                   "...', got '" + token + "'");
  }
  return token.substr(prefix.size());
}

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + s + "'");
  }
  return v;
}

}  // namespace

Result<OpType> OpTypeFromString(const std::string& name) {
  static const std::pair<const char*, OpType> kTypes[] = {
      {"TableScan", OpType::kTableScan},
      {"Filter", OpType::kFilter},
      {"Project", OpType::kProject},
      {"HashJoin", OpType::kHashJoin},
      {"HashAggregate", OpType::kHashAggregate},
      {"Sort", OpType::kSort},
      {"Limit", OpType::kLimit},
      {"Repartition", OpType::kRepartition},
      {"MapUDF", OpType::kMapUdf},
      {"ReduceUDF", OpType::kReduceUdf},
      {"Union", OpType::kUnion},
      {"Sink", OpType::kSink},
  };
  for (const auto& [n, t] : kTypes) {
    if (name == n) return t;
  }
  return Status::InvalidArgument("unknown operator type '" + name + "'");
}

std::string PlanToText(const Plan& plan) {
  std::ostringstream os;
  os << "plan " << plan.name() << "\n";
  for (const auto& n : plan.nodes()) {
    std::vector<std::string> ins;
    ins.reserve(n.inputs.size());
    for (OpId in : n.inputs) ins.push_back(std::to_string(in));
    os << "node " << n.id << " " << OpTypeName(n.type) << " \"" << n.label
       << "\" inputs=" << Join(ins, ",") << " tr=" << DoubleToText(n.runtime_cost)
       << " tm=" << DoubleToText(n.materialize_cost)
       << " rows=" << DoubleToText(n.output_rows)
       << " width=" << DoubleToText(n.row_width_bytes)
       << " constraint=" << ConstraintName(n.constraint) << "\n";
  }
  return os.str();
}

Result<Plan> PlanFromText(const std::string& text) {
  Plan plan;
  bool saw_header = false;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "plan") {
      std::string name;
      std::getline(ls, name);
      const size_t start = name.find_first_not_of(' ');
      plan.set_name(start == std::string::npos ? "" : name.substr(start));
      saw_header = true;
      continue;
    }
    if (keyword != "node") {
      return Status::InvalidArgument(
          StrFormat("line %d: expected 'plan' or 'node'", line_no));
    }
    if (!saw_header) {
      return Status::InvalidArgument("missing 'plan <name>' header");
    }

    int id = -1;
    std::string type_name;
    ls >> id >> type_name;
    if (id != static_cast<int>(plan.num_nodes())) {
      return Status::InvalidArgument(
          StrFormat("line %d: node ids must be dense and ascending",
                    line_no));
    }
    PlanNode node;
    XDBFT_ASSIGN_OR_RETURN(node.type, OpTypeFromString(type_name));

    // Quoted label.
    std::string rest;
    std::getline(ls, rest);
    const size_t q1 = rest.find('"');
    const size_t q2 = q1 == std::string::npos ? std::string::npos
                                              : rest.find('"', q1 + 1);
    if (q2 == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("line %d: missing quoted label", line_no));
    }
    node.label = rest.substr(q1 + 1, q2 - q1 - 1);

    std::istringstream ts(rest.substr(q2 + 1));
    std::string tok;
    ts >> tok;
    XDBFT_ASSIGN_OR_RETURN(const std::string ins, TokenValue(tok, "inputs"));
    if (!ins.empty()) {
      for (const std::string& part : Split(ins, ',')) {
        XDBFT_ASSIGN_OR_RETURN(const double v, ParseDouble(part));
        node.inputs.push_back(static_cast<OpId>(v));
      }
    }
    ts >> tok;
    XDBFT_ASSIGN_OR_RETURN(const std::string tr, TokenValue(tok, "tr"));
    XDBFT_ASSIGN_OR_RETURN(node.runtime_cost, ParseDouble(tr));
    ts >> tok;
    XDBFT_ASSIGN_OR_RETURN(const std::string tm, TokenValue(tok, "tm"));
    XDBFT_ASSIGN_OR_RETURN(node.materialize_cost, ParseDouble(tm));
    ts >> tok;
    XDBFT_ASSIGN_OR_RETURN(const std::string rows, TokenValue(tok, "rows"));
    XDBFT_ASSIGN_OR_RETURN(node.output_rows, ParseDouble(rows));
    ts >> tok;
    XDBFT_ASSIGN_OR_RETURN(const std::string width,
                           TokenValue(tok, "width"));
    XDBFT_ASSIGN_OR_RETURN(node.row_width_bytes, ParseDouble(width));
    ts >> tok;
    XDBFT_ASSIGN_OR_RETURN(const std::string cons,
                           TokenValue(tok, "constraint"));
    XDBFT_ASSIGN_OR_RETURN(node.constraint, ConstraintFromString(cons));
    plan.AddNode(std::move(node));
  }
  if (!saw_header) {
    return Status::InvalidArgument("missing 'plan <name>' header");
  }
  XDBFT_RETURN_NOT_OK(plan.Validate());
  return plan;
}

}  // namespace xdbft::plan
