#include "plan/plan.h"

#include <cmath>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace xdbft::plan {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kTableScan:
      return "TableScan";
    case OpType::kFilter:
      return "Filter";
    case OpType::kProject:
      return "Project";
    case OpType::kHashJoin:
      return "HashJoin";
    case OpType::kHashAggregate:
      return "HashAggregate";
    case OpType::kSort:
      return "Sort";
    case OpType::kLimit:
      return "Limit";
    case OpType::kRepartition:
      return "Repartition";
    case OpType::kMapUdf:
      return "MapUDF";
    case OpType::kReduceUdf:
      return "ReduceUDF";
    case OpType::kUnion:
      return "Union";
    case OpType::kSink:
      return "Sink";
  }
  return "?";
}

OpId Plan::AddNode(PlanNode node) {
  node.id = static_cast<OpId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

std::vector<OpId> Plan::Sources() const {
  std::vector<OpId> out;
  for (const auto& n : nodes_) {
    if (n.inputs.empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<OpId> Plan::Sinks() const {
  std::vector<bool> consumed(nodes_.size(), false);
  for (const auto& n : nodes_) {
    for (OpId in : n.inputs) consumed[static_cast<size_t>(in)] = true;
  }
  std::vector<OpId> out;
  for (const auto& n : nodes_) {
    if (!consumed[static_cast<size_t>(n.id)]) out.push_back(n.id);
  }
  return out;
}

std::vector<OpId> Plan::Consumers(OpId id) const {
  std::vector<OpId> out;
  for (const auto& n : nodes_) {
    for (OpId in : n.inputs) {
      if (in == id) {
        out.push_back(n.id);
        break;
      }
    }
  }
  return out;
}

std::vector<OpId> Plan::TopologicalOrder() const {
  // AddNode requires inputs to precede consumers, so ascending ids are
  // already topological.
  std::vector<OpId> order(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<OpId>(i);
  return order;
}

std::vector<OpId> Plan::FreeOperators() const {
  std::vector<OpId> out;
  for (const auto& n : nodes_) {
    if (n.is_free()) out.push_back(n.id);
  }
  return out;
}

Status Plan::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("plan is empty");
  for (const auto& n : nodes_) {
    std::set<OpId> seen;
    for (OpId in : n.inputs) {
      if (in < 0 || in >= n.id) {
        return Status::InvalidArgument(
            StrFormat("node %d has invalid input %d (must reference an "
                      "earlier node)",
                      n.id, in));
      }
      if (!seen.insert(in).second) {
        return Status::InvalidArgument(
            StrFormat("node %d lists input %d twice", n.id, in));
      }
    }
    if (n.label.empty()) {
      return Status::InvalidArgument(StrFormat("node %d has no label", n.id));
    }
    if (!std::isfinite(n.runtime_cost) || n.runtime_cost < 0.0) {
      return Status::InvalidArgument(
          StrFormat("node %d (%s) has invalid runtime cost", n.id,
                    n.label.c_str()));
    }
    if (!std::isfinite(n.materialize_cost) || n.materialize_cost < 0.0) {
      return Status::InvalidArgument(
          StrFormat("node %d (%s) has invalid materialization cost", n.id,
                    n.label.c_str()));
    }
  }
  if (Sinks().empty()) {
    return Status::InvalidArgument("plan has no sink");
  }
  return Status::OK();
}

double Plan::TotalRuntimeCost() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n.runtime_cost;
  return total;
}

double Plan::TotalMaterializeCost() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n.materialize_cost;
  return total;
}

std::string Plan::Explain() const {
  std::ostringstream os;
  os << "Plan " << name_ << " (" << nodes_.size() << " operators)\n";
  for (const auto& n : nodes_) {
    os << StrFormat("  [%2d] %-14s %-28s tr=%-9.3f tm=%-9.3f", n.id,
                    OpTypeName(n.type), n.label.c_str(), n.runtime_cost,
                    n.materialize_cost);
    switch (n.constraint) {
      case MatConstraint::kFree:
        os << " free";
        break;
      case MatConstraint::kNeverMaterialize:
        os << " bound(m=0)";
        break;
      case MatConstraint::kAlwaysMaterialize:
        os << " bound(m=1)";
        break;
    }
    if (!n.inputs.empty()) {
      os << "  <- {";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        if (i) os << ",";
        os << n.inputs[i];
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

OpId PlanBuilder::Scan(const std::string& table, double rows,
                       double width_bytes, double runtime_cost) {
  PlanNode n;
  n.type = OpType::kTableScan;
  n.label = "Scan(" + table + ")";
  n.runtime_cost = runtime_cost;
  n.materialize_cost = 0.0;
  n.output_rows = rows;
  n.row_width_bytes = width_bytes;
  return plan_.AddNode(std::move(n));
}

OpId PlanBuilder::Unary(OpType type, const std::string& label, OpId input,
                        double runtime_cost, double materialize_cost,
                        double output_rows, double width_bytes) {
  return Nary(type, label, {input}, runtime_cost, materialize_cost,
              output_rows, width_bytes);
}

OpId PlanBuilder::Binary(OpType type, const std::string& label, OpId left,
                         OpId right, double runtime_cost,
                         double materialize_cost, double output_rows,
                         double width_bytes) {
  return Nary(type, label, {left, right}, runtime_cost, materialize_cost,
              output_rows, width_bytes);
}

OpId PlanBuilder::Nary(OpType type, const std::string& label,
                       std::vector<OpId> inputs, double runtime_cost,
                       double materialize_cost, double output_rows,
                       double width_bytes) {
  PlanNode n;
  n.type = type;
  n.label = label;
  n.inputs = std::move(inputs);
  n.runtime_cost = runtime_cost;
  n.materialize_cost = materialize_cost;
  n.output_rows = output_rows;
  n.row_width_bytes = width_bytes;
  return plan_.AddNode(std::move(n));
}

PlanBuilder& PlanBuilder::Constrain(OpId id, MatConstraint c) {
  plan_.mutable_node(id).constraint = c;
  return *this;
}

Plan PlanBuilder::Build() && { return std::move(plan_); }

}  // namespace xdbft::plan
