// Plan: a DAG-structured execution plan (paper §2.1) plus structural
// queries used throughout the library: topological order, sources/sinks,
// consumer lookup, validation and explain output.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "plan/plan_node.h"

namespace xdbft::plan {

/// \brief DAG-structured execution plan. Nodes are stored densely and
/// addressed by OpId; edges point from input (producer) to consumer via each
/// node's `inputs` list.
class Plan {
 public:
  Plan() = default;
  explicit Plan(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// \brief Append a node; assigns and returns its id. Inputs in `node`
  /// must reference already-added nodes.
  OpId AddNode(PlanNode node);

  size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const PlanNode& node(OpId id) const { return nodes_[static_cast<size_t>(id)]; }
  PlanNode& mutable_node(OpId id) { return nodes_[static_cast<size_t>(id)]; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }

  /// \brief Ids of operators with no inputs.
  std::vector<OpId> Sources() const;
  /// \brief Ids of operators whose output no other operator consumes.
  std::vector<OpId> Sinks() const;
  /// \brief Ids of operators that consume `id`'s output.
  std::vector<OpId> Consumers(OpId id) const;

  /// \brief Node ids in a topological order (inputs before consumers).
  /// AddNode enforces producers-before-consumers, so ids ascending is one.
  std::vector<OpId> TopologicalOrder() const;

  /// \brief Ids of free operators (f(o) = 1), ascending.
  std::vector<OpId> FreeOperators() const;

  /// \brief Structural checks: nonempty, input ids valid and acyclic
  /// (producer id < consumer id by construction), labels set, costs finite
  /// and non-negative.
  Status Validate() const;

  /// \brief Sum of tr(o) over all operators.
  double TotalRuntimeCost() const;
  /// \brief Sum of tm(o) over all operators.
  double TotalMaterializeCost() const;

  /// \brief Multi-line plan rendering for logs and examples.
  std::string Explain() const;

 private:
  std::string name_;
  std::vector<PlanNode> nodes_;
};

/// \brief Fluent helper to assemble plans in tests/examples.
///
/// Example:
///   PlanBuilder b("q");
///   auto scan = b.Scan("R", /*rows=*/1e6, /*width=*/100, /*tr=*/2.0);
///   auto filt = b.Unary(OpType::kFilter, "sigma", scan, 1.0, 0.5);
///   auto plan = std::move(b).Build();
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string name) : plan_(std::move(name)) {}

  /// \brief Add a source (scan) node.
  OpId Scan(const std::string& table, double rows, double width_bytes,
            double runtime_cost);

  /// \brief Add a unary operator consuming `input`.
  OpId Unary(OpType type, const std::string& label, OpId input,
             double runtime_cost, double materialize_cost,
             double output_rows = 0.0, double width_bytes = 0.0);

  /// \brief Add a binary operator (e.g. hash join).
  OpId Binary(OpType type, const std::string& label, OpId left, OpId right,
              double runtime_cost, double materialize_cost,
              double output_rows = 0.0, double width_bytes = 0.0);

  /// \brief Add an n-ary operator.
  OpId Nary(OpType type, const std::string& label, std::vector<OpId> inputs,
            double runtime_cost, double materialize_cost,
            double output_rows = 0.0, double width_bytes = 0.0);

  /// \brief Set the materialization constraint of an operator.
  PlanBuilder& Constrain(OpId id, MatConstraint c);

  /// \brief Finish; the builder is left empty.
  Plan Build() &&;

  Plan& plan() { return plan_; }

 private:
  Plan plan_;
};

}  // namespace xdbft::plan
