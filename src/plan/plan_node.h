// PlanNode: one operator of a DAG-structured parallel execution plan (paper
// §2.1). Each node carries the per-operator statistics the cost model needs
// (tr(o), tm(o)) plus the materialization flag m(o) and the free/bound flag
// f(o).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xdbft::plan {

/// \brief Operator id within a Plan; dense, assigned by Plan::AddNode.
using OpId = int32_t;
constexpr OpId kInvalidOpId = -1;

/// \brief Physical operator kinds supported by the library.
///
/// The fault-tolerance scheme itself is operator-agnostic (§2.1: arbitrary
/// operators including UDFs are supported as long as tr/tm estimates exist);
/// the kind is used by the execution engine, the planner (to mark bound
/// operators such as repartitioning) and explain output.
enum class OpType : int {
  kTableScan,
  kFilter,
  kProject,
  kHashJoin,
  kHashAggregate,
  kSort,
  kLimit,
  kRepartition,
  kMapUdf,
  kReduceUdf,
  kUnion,
  kSink,
};

const char* OpTypeName(OpType type);

/// \brief Materialization constraint of an operator (paper §2.1).
///
/// Bound operators (f(o) = 0) have their m(o) fixed before enumeration:
/// kNeverMaterialize forces m(o)=0, kAlwaysMaterialize forces m(o)=1 (e.g.
/// PDEs that always materialize repartition output). kFree operators
/// (f(o) = 1) are optimized by the cost-based scheme.
enum class MatConstraint : int {
  kFree,
  kNeverMaterialize,
  kAlwaysMaterialize,
};

/// \brief One operator in a DAG-structured execution plan.
struct PlanNode {
  OpId id = kInvalidOpId;
  OpType type = OpType::kTableScan;
  /// Display name, e.g. "Scan(LINEITEM)" or "HashJoin(orderkey)".
  std::string label;

  /// Inputs: ids of the operators whose output this operator consumes.
  std::vector<OpId> inputs;

  /// Estimated accumulated execution cost tr(o) for partition-parallel
  /// execution, in cost units (seconds when CONST_cost = 1).
  double runtime_cost = 0.0;
  /// Estimated accumulated cost tm(o) of materializing this operator's
  /// output to the fault-tolerant storage medium.
  double materialize_cost = 0.0;

  /// Estimated output cardinality (rows) and width (bytes/row); used by the
  /// cost estimator to derive materialize_cost and by the optimizer.
  double output_rows = 0.0;
  double row_width_bytes = 0.0;

  /// f(o)/forced-m(o) per §2.1.
  MatConstraint constraint = MatConstraint::kFree;

  /// \brief True iff the enumerator may choose m(o) (f(o) = 1).
  bool is_free() const { return constraint == MatConstraint::kFree; }
};

}  // namespace xdbft::plan
