// Text serialization of execution plans: a line-oriented, diff-friendly
// format for persisting calibrated plans (e.g. the output of
// engine::BuildCalibratedPlan) and exchanging them with tooling.
//
// Format (one node per line, '#' starts a comment):
//   plan <name>
//   node <id> <type> "<label>" inputs=<i,j,...> tr=<v> tm=<v>
//        rows=<v> width=<v> constraint=<free|never|always>
// (the node line is a single physical line; it is wrapped here only for
// readability)
#pragma once

#include <string>

#include "common/result.h"
#include "plan/plan.h"

namespace xdbft::plan {

/// \brief Serialize `plan` to the text format (round-trips through
/// PlanFromText bit-exactly for finite costs).
std::string PlanToText(const Plan& plan);

/// \brief Parse a plan from the text format. Node ids must be dense and
/// ascending; inputs must reference earlier nodes.
Result<Plan> PlanFromText(const std::string& text);

/// \brief Parse the OpType keyword used by the format ("HashJoin", ...).
Result<OpType> OpTypeFromString(const std::string& name);

}  // namespace xdbft::plan
