// TPC-H schema metadata: table cardinalities as a function of scale factor,
// row widths, and the partitioning layout used by the paper's XDB testbed
// (§5.1: LINEITEM/ORDERS hash co-partitioned on orderkey; CUSTOMER,
// PARTSUPP, SUPPLIER RREF-partitioned; NATION/REGION replicated).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace xdbft::catalog {

enum class TpchTable : int {
  kRegion,
  kNation,
  kSupplier,
  kCustomer,
  kPart,
  kPartSupp,
  kOrders,
  kLineitem,
};

constexpr int kNumTpchTables = 8;

const char* TpchTableName(TpchTable t);

/// \brief How a table is laid out across the cluster (§5.1).
enum class Partitioning : int {
  /// Full copy on every node (NATION, REGION).
  kReplicated,
  /// Hash-partitioned on a key (LINEITEM, ORDERS on orderkey).
  kHash,
  /// Redundantly referenced partitioning [8]: tuples partially replicated
  /// to co-locate joins (CUSTOMER, PARTSUPP, SUPPLIER).
  kRref,
};

/// \brief Static description of one TPC-H table.
struct TpchTableInfo {
  TpchTable table;
  std::string name;
  /// Rows at SF = 1 (LINEITEM uses the official 6,001,215).
  double base_rows;
  /// True for NATION/REGION, whose size does not scale with SF.
  bool fixed_size;
  /// Approximate row width in bytes.
  double row_width_bytes;
  Partitioning partitioning;
  std::string partition_key;
};

/// \brief Catalog for a TPC-H database of a given scale factor.
class TpchCatalog {
 public:
  explicit TpchCatalog(double scale_factor);

  double scale_factor() const { return scale_factor_; }

  const TpchTableInfo& info(TpchTable t) const;
  const std::vector<TpchTableInfo>& tables() const { return tables_; }

  /// \brief Row count of `t` at this scale factor.
  double Rows(TpchTable t) const;

  /// \brief Total size of `t` in bytes.
  double Bytes(TpchTable t) const;

  /// \brief Distinct values of well-known keys (for join-cardinality
  /// estimation): e.g. 25 nations, 1.5M*SF orderkeys.
  double DistinctValues(TpchTable t, const std::string& column) const;

  /// \brief Well-known selectivity of classic TPC-H predicates used by the
  /// benchmark queries (e.g. one REGION out of five, one year of ORDERS).
  static double RegionSelectivity() { return 1.0 / 5.0; }
  static double OrderDateYearSelectivity() { return 1.0 / 7.0; }
  static double LineitemShipdateQ1Selectivity() { return 0.98; }
  static double Q3SegmentSelectivity() { return 1.0 / 5.0; }
  static double Q3DateSelectivity() { return 0.48; }
  static double Q2PartTypeSelectivity() { return 1.0 / 25.0; }

 private:
  double scale_factor_;
  std::vector<TpchTableInfo> tables_;
};

}  // namespace xdbft::catalog
