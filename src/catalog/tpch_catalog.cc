#include "catalog/tpch_catalog.h"

#include "common/logging.h"

namespace xdbft::catalog {

const char* TpchTableName(TpchTable t) {
  switch (t) {
    case TpchTable::kRegion:
      return "REGION";
    case TpchTable::kNation:
      return "NATION";
    case TpchTable::kSupplier:
      return "SUPPLIER";
    case TpchTable::kCustomer:
      return "CUSTOMER";
    case TpchTable::kPart:
      return "PART";
    case TpchTable::kPartSupp:
      return "PARTSUPP";
    case TpchTable::kOrders:
      return "ORDERS";
    case TpchTable::kLineitem:
      return "LINEITEM";
  }
  return "?";
}

TpchCatalog::TpchCatalog(double scale_factor) : scale_factor_(scale_factor) {
  XDBFT_CHECK(scale_factor > 0.0);
  tables_ = {
      {TpchTable::kRegion, "REGION", 5, true, 120, Partitioning::kReplicated,
       ""},
      {TpchTable::kNation, "NATION", 25, true, 128,
       Partitioning::kReplicated, ""},
      {TpchTable::kSupplier, "SUPPLIER", 10000, false, 160,
       Partitioning::kRref, "suppkey"},
      {TpchTable::kCustomer, "CUSTOMER", 150000, false, 180,
       Partitioning::kRref, "custkey"},
      {TpchTable::kPart, "PART", 200000, false, 156, Partitioning::kRref,
       "partkey"},
      {TpchTable::kPartSupp, "PARTSUPP", 800000, false, 144,
       Partitioning::kRref, "partkey"},
      {TpchTable::kOrders, "ORDERS", 1500000, false, 128,
       Partitioning::kHash, "orderkey"},
      {TpchTable::kLineitem, "LINEITEM", 6001215, false, 120,
       Partitioning::kHash, "orderkey"},
  };
}

const TpchTableInfo& TpchCatalog::info(TpchTable t) const {
  return tables_[static_cast<size_t>(t)];
}

double TpchCatalog::Rows(TpchTable t) const {
  const TpchTableInfo& ti = info(t);
  return ti.fixed_size ? ti.base_rows : ti.base_rows * scale_factor_;
}

double TpchCatalog::Bytes(TpchTable t) const {
  return Rows(t) * info(t).row_width_bytes;
}

double TpchCatalog::DistinctValues(TpchTable t,
                                   const std::string& column) const {
  // Key columns are unique in their owning table; foreign keys inherit the
  // referenced table's domain size.
  if (column == "nationkey") return 25;
  if (column == "regionkey") return 5;
  if (column == "suppkey") return Rows(TpchTable::kSupplier);
  if (column == "custkey") return Rows(TpchTable::kCustomer);
  if (column == "partkey") return Rows(TpchTable::kPart);
  if (column == "orderkey") return Rows(TpchTable::kOrders);
  return Rows(t);  // fall back: treat as unique
}

}  // namespace xdbft::catalog
