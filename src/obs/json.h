// Minimal JSON support for the observability layer: escaping/number
// rendering for the writers (metrics snapshots, trace files, run reports)
// and a strict recursive-descent parser used by tests and tools to
// validate and navigate the emitted documents. Not a general-purpose JSON
// library — no streaming, no comments, doubles only.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace xdbft::obs {

/// \brief Escape `s` into a double-quoted JSON string literal.
std::string JsonQuote(const std::string& s);

/// \brief Render a double as a JSON number ("null" for NaN/inf, which JSON
/// cannot represent).
std::string JsonNumber(double v);

/// \brief A parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// \brief Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// \brief `Find` chained over a dotted path ("metrics.counters.x").
  const JsonValue* FindPath(const std::string& dotted_path) const;
};

/// \brief Strict parse of a complete JSON document (trailing whitespace
/// allowed, trailing garbage is an error).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace xdbft::obs
