// Post-mortem bundles: a self-contained JSON document written when a run
// dies — executor abort, simulator max-restarts exhaustion, or a failed
// crosscheck. The bundle carries everything needed to understand and
// replay the failure without the original process: the flight-recorder
// event tail, a metrics snapshot, any collected query profiles, the FT
// attempt timeline, and (for crosscheck violations) the minimized
// reproducer JSON plus the seed and a replay command line.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/attempt_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"

namespace xdbft::obs {

struct PostMortem {
  std::string tool;    // producing binary/component, e.g. "ft_executor"
  std::string reason;  // human-readable abort reason
  uint64_t seed = 0;   // reproducer seed (0 when not seed-driven)
  std::string replay;  // command line that replays the failure, if any
  std::map<std::string, std::string> params;
  std::vector<FlightEvent> events;  // flight-recorder tail, oldest first
  MetricsSnapshot metrics;
  std::vector<QueryProfile> profiles;
  AttemptTimeline timeline;
  std::string reproducer_json;  // embedded verbatim; empty -> null

  std::string ToJson() const;
};

// Captures the process-wide flight-recorder tail and metrics snapshot
// into `pm` (the usual last step before writing).
void CaptureProcessState(PostMortem* pm);

// Writes the bundle as postmortem-<tool>-<seed>-<n>.json under `dir`
// (created if missing) and returns the written path.
Result<std::string> WritePostMortem(const std::string& dir,
                                    const PostMortem& pm);

}  // namespace xdbft::obs
