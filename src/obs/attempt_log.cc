#include "obs/attempt_log.h"

#include "common/string_util.h"
#include "obs/json.h"

namespace xdbft::obs {

std::string AttemptTimeline::ToText() const {
  std::string out;
  for (const auto& r : records) {
    out += StrFormat("[%9.3fs .. %9.3fs] %-24s stage=%d node=%d attempt=%d %s",
                     r.dispatch_seconds, r.finish_seconds, r.label.c_str(),
                     r.stage, r.node, r.attempt,
                     r.killed ? "KILLED" : "ok");
    if (r.rows_out > 0) {
      out += StrFormat(" rows=%llu", (unsigned long long)r.rows_out);
    }
    if (r.rows_lost > 0) {
      out += StrFormat(" rows_lost=%llu", (unsigned long long)r.rows_lost);
    }
    out += "\n";
  }
  return out;
}

std::string AttemptTimeline::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const AttemptRecord& r = records[i];
    if (i > 0) out += ", ";
    out += "{\"label\": ";
    out += JsonQuote(r.label);
    out += StrFormat(", \"stage\": %d, \"node\": %d, \"attempt\": %d", r.stage,
                     r.node, r.attempt);
    out += ", \"dispatch_seconds\": ";
    out += JsonNumber(r.dispatch_seconds);
    out += ", \"finish_seconds\": ";
    out += JsonNumber(r.finish_seconds);
    out += StrFormat(", \"killed\": %s, \"rows_out\": %llu, \"rows_lost\": %llu}",
                     r.killed ? "true" : "false",
                     (unsigned long long)r.rows_out,
                     (unsigned long long)r.rows_lost);
  }
  out += "]";
  return out;
}

}  // namespace xdbft::obs
