// Thread-safe process-wide metrics: named monotonic counters, gauges and
// fixed-bucket histograms, snapshotable to JSON. The hot-path surface is a
// set of XDBFT_* macros that cache the metric pointer in a function-local
// static, so an instrumented call site costs one relaxed atomic op — and
// compiles to nothing when the build disables instrumentation
// (-DXDBFT_DISABLE_METRICS, cmake -DXDBFT_ENABLE_METRICS=OFF).
//
// Conventions: metric names are dot-separated ("layer.quantity", e.g.
// "executor.recoveries"); durations are seconds; sizes are bytes. See
// DESIGN.md §Observability for the full metric inventory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xdbft::obs {

/// \brief Monotonic counter (relaxed atomics; aggregate reads are not
/// linearizable with concurrent writers, which is fine for reporting).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-written double value, with atomic accumulate.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram: bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; the last bucket is the +inf overflow.
class Histogram {
 public:
  /// \brief `bounds` are the inclusive upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// \brief Per-bucket counts (bounds().size() + 1 entries).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// \brief Estimated p-th percentile (p in [0, 100]) by linear
  /// interpolation within the containing bucket (the first bucket
  /// interpolates from 0, the overflow bucket clamps to the last bound).
  /// An empty histogram returns 0.
  double Percentile(double p) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Exponential seconds buckets 1ms..~100s, the default for timers.
const std::vector<double>& DefaultLatencyBoundsSeconds();

/// \brief Exponential seconds buckets 1µs..~4s — for request-serving
/// latencies (advisor-service cache hits land far below the 1 ms floor of
/// the default bounds, which would report every hit as "p99 <= 1ms").
const std::vector<double>& MicroLatencyBoundsSeconds();

/// \brief Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;
    uint64_t count = 0;
    double sum = 0.0;

    /// \brief Same estimator as Histogram::Percentile, over the snapshot.
    double Percentile(double p) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  double gauge(const std::string& name) const {
    const auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
  }

  /// \brief `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
  std::string ToJson(bool compact = false) const;
};

/// \brief Thread-safe name -> metric registry. Metric objects live for the
/// registry's lifetime, so returned pointers may be cached (the macros
/// below cache them in function-local statics).
class MetricsRegistry {
 public:
  /// \brief The process-wide registry used by the XDBFT_* macros.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// \brief Registers with `bounds` on first use; later calls for the same
  /// name return the existing histogram regardless of bounds.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);
  Histogram* GetHistogram(const std::string& name) {
    return GetHistogram(name, DefaultLatencyBoundsSeconds());
  }

  MetricsSnapshot Snapshot() const;
  /// \brief Zero every metric (tests). Registered objects stay valid.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief RAII wall-clock timer; on destruction observes elapsed seconds
/// into the histogram and/or accumulates into the gauge (either may be
/// null).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, Gauge* accumulate_gauge = nullptr)
      : histogram_(histogram),
        gauge_(accumulate_gauge),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const double s = ElapsedSeconds();
    if (histogram_ != nullptr) histogram_->Observe(s);
    if (gauge_ != nullptr) gauge_->Add(s);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Histogram* histogram_;
  Gauge* gauge_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xdbft::obs

// Hot-path instrumentation macros. Each call site resolves its metric once
// (thread-safe function-local static) and then pays one relaxed atomic op.
#if !defined(XDBFT_DISABLE_METRICS)

#define XDBFT_OBS_CONCAT_INNER(a, b) a##b
#define XDBFT_OBS_CONCAT(a, b) XDBFT_OBS_CONCAT_INNER(a, b)

#define XDBFT_COUNTER_ADD(name, delta)                                     \
  do {                                                                     \
    static ::xdbft::obs::Counter* xdbft_obs_counter =                      \
        ::xdbft::obs::MetricsRegistry::Default().GetCounter(name);         \
    xdbft_obs_counter->Add(static_cast<uint64_t>(delta));                  \
  } while (false)

#define XDBFT_COUNTER_INC(name) XDBFT_COUNTER_ADD(name, 1)

#define XDBFT_GAUGE_SET(name, value)                                       \
  do {                                                                     \
    static ::xdbft::obs::Gauge* xdbft_obs_gauge =                          \
        ::xdbft::obs::MetricsRegistry::Default().GetGauge(name);           \
    xdbft_obs_gauge->Set(static_cast<double>(value));                      \
  } while (false)

#define XDBFT_GAUGE_ADD(name, delta)                                       \
  do {                                                                     \
    static ::xdbft::obs::Gauge* xdbft_obs_gauge =                          \
        ::xdbft::obs::MetricsRegistry::Default().GetGauge(name);           \
    xdbft_obs_gauge->Add(static_cast<double>(delta));                      \
  } while (false)

#define XDBFT_HISTOGRAM_OBSERVE(name, value)                               \
  do {                                                                     \
    static ::xdbft::obs::Histogram* xdbft_obs_hist =                       \
        ::xdbft::obs::MetricsRegistry::Default().GetHistogram(name);       \
    xdbft_obs_hist->Observe(static_cast<double>(value));                   \
  } while (false)

/// Histogram with microsecond-resolution buckets (request-serving paths).
#define XDBFT_HISTOGRAM_OBSERVE_MICRO(name, value)                         \
  do {                                                                     \
    static ::xdbft::obs::Histogram* xdbft_obs_hist =                       \
        ::xdbft::obs::MetricsRegistry::Default().GetHistogram(             \
            name, ::xdbft::obs::MicroLatencyBoundsSeconds());              \
    xdbft_obs_hist->Observe(static_cast<double>(value));                   \
  } while (false)

/// Times the enclosing scope into histogram `name` (seconds).
#define XDBFT_SCOPED_TIMER(name)                                           \
  ::xdbft::obs::ScopedTimer XDBFT_OBS_CONCAT(xdbft_obs_timer_, __LINE__)(  \
      ::xdbft::obs::MetricsRegistry::Default().GetHistogram(name))

/// Accumulates the enclosing scope's wall time into gauge `name` (seconds).
#define XDBFT_SCOPED_TIMER_GAUGE(name)                                     \
  ::xdbft::obs::ScopedTimer XDBFT_OBS_CONCAT(xdbft_obs_timer_, __LINE__)(  \
      nullptr, ::xdbft::obs::MetricsRegistry::Default().GetGauge(name))

#else  // XDBFT_DISABLE_METRICS: every instrumented site compiles away.

#define XDBFT_COUNTER_ADD(name, delta) \
  do {                                 \
  } while (false)
#define XDBFT_COUNTER_INC(name) \
  do {                          \
  } while (false)
#define XDBFT_GAUGE_SET(name, value) \
  do {                               \
  } while (false)
#define XDBFT_GAUGE_ADD(name, delta) \
  do {                               \
  } while (false)
#define XDBFT_HISTOGRAM_OBSERVE(name, value) \
  do {                                       \
  } while (false)
#define XDBFT_HISTOGRAM_OBSERVE_MICRO(name, value) \
  do {                                             \
  } while (false)
#define XDBFT_SCOPED_TIMER(name) \
  do {                           \
  } while (false)
#define XDBFT_SCOPED_TIMER_GAUGE(name) \
  do {                                 \
  } while (false)

#endif  // XDBFT_DISABLE_METRICS
