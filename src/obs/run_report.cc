#include "obs/run_report.h"

#include <fstream>

#include "obs/json.h"

namespace xdbft::obs {

std::string RunReport::ToJson() const {
  std::string out = "{\n  \"tool\": ";
  out += JsonQuote(tool);
  out += ",\n  \"plan\": ";
  out += JsonQuote(plan_name);
  out += ",\n  \"config\": ";
  out += JsonQuote(config_summary);
  out += ",\n  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : params) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += JsonQuote(key);
    out += ": ";
    out += JsonQuote(value);
  }
  out += "\n  },\n  \"profiles\": [";
  for (size_t i = 0; i < profiles.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    out += profiles[i].ToJson();
  }
  out += "\n  ],\n  \"metrics\": ";
  out += metrics.ToJson();
  // metrics.ToJson() ends with "}\n"; close the report object.
  while (!out.empty() && (out.back() == '\n')) out.pop_back();
  out += "\n}\n";
  return out;
}

Status RunReport::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open report output file: " + path);
  }
  out << ToJson();
  if (!out.good()) {
    return Status::Internal("failed writing report output file: " + path);
  }
  return Status::OK();
}

}  // namespace xdbft::obs
