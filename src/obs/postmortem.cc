#include "obs/postmortem.h"

#include <atomic>
#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "obs/json.h"

namespace xdbft::obs {

namespace {

std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("run") : out;
}

}  // namespace

std::string PostMortem::ToJson() const {
  std::string out = "{\n  \"tool\": ";
  out += JsonQuote(tool);
  out += ",\n  \"reason\": ";
  out += JsonQuote(reason);
  out += StrFormat(",\n  \"seed\": %llu", (unsigned long long)seed);
  out += ",\n  \"replay\": ";
  out += JsonQuote(replay);
  out += ",\n  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : params) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += JsonQuote(key);
    out += ": ";
    out += JsonQuote(value);
  }
  out += "\n  },\n  \"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += StrFormat("{\"seq\": %llu, \"t_seconds\": ",
                     (unsigned long long)e.seq);
    out += JsonNumber(e.t_seconds);
    out += ", \"category\": ";
    out += JsonQuote(e.category);
    out += ", \"message\": ";
    out += JsonQuote(e.message);
    out += StrFormat(", \"a\": %lld, \"b\": %lld}", (long long)e.a,
                     (long long)e.b);
  }
  out += "\n  ],\n  \"timeline\": ";
  out += timeline.ToJson();
  out += ",\n  \"profiles\": [";
  for (size_t i = 0; i < profiles.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    out += profiles[i].ToJson();
  }
  out += "\n  ],\n  \"reproducer\": ";
  if (reproducer_json.empty()) {
    out += "null";
  } else {
    // Already a complete JSON document; embed verbatim (minus trailing
    // whitespace so the bundle stays tidy).
    std::string repro = reproducer_json;
    while (!repro.empty() &&
           (repro.back() == '\n' || repro.back() == ' ')) {
      repro.pop_back();
    }
    out += repro;
  }
  out += ",\n  \"metrics\": ";
  std::string m = metrics.ToJson();
  while (!m.empty() && m.back() == '\n') m.pop_back();
  out += m;
  out += "\n}\n";
  return out;
}

void CaptureProcessState(PostMortem* pm) {
  pm->events = FlightRecorder::Default().Tail();
  pm->metrics = MetricsRegistry::Default().Snapshot();
}

Result<std::string> WritePostMortem(const std::string& dir,
                                    const PostMortem& pm) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create post-mortem dir " + dir + ": " +
                            ec.message());
  }
  // Process-local counter keeps multiple bundles from one run distinct.
  static std::atomic<uint64_t> bundle_counter{0};
  const uint64_t n = bundle_counter.fetch_add(1);
  const std::string path =
      dir + "/postmortem-" + SanitizeForFilename(pm.tool) +
      StrFormat("-%llu-%llu.json", (unsigned long long)pm.seed,
                (unsigned long long)n);
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open post-mortem file: " + path);
  }
  out << pm.ToJson();
  if (!out.good()) {
    return Status::Internal("failed writing post-mortem file: " + path);
  }
  return path;
}

}  // namespace xdbft::obs
