#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace xdbft::obs {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Round-trippable and compact; integers render without exponent.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%.0f", v);
  }
  return StrFormat("%.17g", v);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::FindPath(const std::string& dotted_path) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr && start <= dotted_path.size()) {
    const size_t dot = dotted_path.find('.', start);
    const std::string key =
        dotted_path.substr(start, dot == std::string::npos ? std::string::npos
                                                           : dot - start);
    cur = cur->Find(key);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return cur;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    XDBFT_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      XDBFT_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      XDBFT_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace(std::move(key.string_value), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      XDBFT_ASSIGN_OR_RETURN(JsonValue elem, ParseValue());
      v.array.push_back(std::move(elem));
      SkipWhitespace();
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          v.string_value.push_back('"');
          break;
        case '\\':
          v.string_value.push_back('\\');
          break;
        case '/':
          v.string_value.push_back('/');
          break;
        case 'b':
          v.string_value.push_back('\b');
          break;
        case 'f':
          v.string_value.push_back('\f');
          break;
        case 'n':
          v.string_value.push_back('\n');
          break;
        case 'r':
          v.string_value.push_back('\r');
          break;
        case 't':
          v.string_value.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Basic-multilingual-plane only; encode as UTF-8.
          if (code < 0x80) {
            v.string_value.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            v.string_value.push_back(static_cast<char>(0xC0 | (code >> 6)));
            v.string_value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            v.string_value.push_back(static_cast<char>(0xE0 | (code >> 12)));
            v.string_value.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            v.string_value.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.bool_value = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.bool_value = false;
      pos_ += 5;
      return v;
    }
    return Error("invalid literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Error("invalid literal");
    pos_ += 4;
    return JsonValue{};
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number_value = parsed;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace xdbft::obs
