#include "obs/query_profile.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/json.h"

namespace xdbft::obs {

namespace {

double ChildSeconds(const OperatorProfile& p) {
  double s = 0.0;
  for (const auto& c : p.children) s += c.seconds;
  return s;
}

std::string HumanBytes(uint64_t bytes) {
  if (bytes < 1024) return StrFormat("%lluB", (unsigned long long)bytes);
  const char* units[] = {"KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  int u = -1;
  while (v >= 1024.0 && u < 2) {
    v /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f%s", v, units[u]);
}

void RenderNode(const OperatorProfile& p, int depth, std::string* out) {
  for (int i = 0; i < depth; ++i) *out += "  ";
  if (depth > 0) *out += "-> ";
  *out += p.name;
  *out += StrFormat("  rows=%llu batches=%llu", (unsigned long long)p.rows_out,
                    (unsigned long long)p.batches);
  const uint64_t in = p.rows_in();
  if (in > 0) {
    *out += StrFormat(" sel=%.1f%%",
                      100.0 * static_cast<double>(p.rows_out) /
                          static_cast<double>(in));
  }
  const double self = std::max(0.0, p.seconds - ChildSeconds(p));
  *out += StrFormat(" time=%.3fms self=%.3fms", p.seconds * 1e3, self * 1e3);
  if (p.est_memory_bytes > 0) {
    *out += " mem=" + HumanBytes(p.est_memory_bytes);
  }
  if (p.pipeline_id >= 0) *out += StrFormat(" pipeline=%d", p.pipeline_id);
  *out += "\n";
  for (const auto& c : p.children) RenderNode(c, depth + 1, out);
}

void NodeToJson(const OperatorProfile& p, std::string* out) {
  *out += "{\"op\": ";
  *out += JsonQuote(p.name);
  *out += StrFormat(", \"rows_out\": %llu, \"batches\": %llu",
                    (unsigned long long)p.rows_out,
                    (unsigned long long)p.batches);
  *out += ", \"seconds\": ";
  *out += JsonNumber(p.seconds);
  *out += ", \"self_seconds\": ";
  *out += JsonNumber(std::max(0.0, p.seconds - ChildSeconds(p)));
  *out += StrFormat(", \"est_memory_bytes\": %llu, \"pipeline\": %d",
                    (unsigned long long)p.est_memory_bytes, p.pipeline_id);
  *out += ", \"children\": [";
  for (size_t i = 0; i < p.children.size(); ++i) {
    if (i > 0) *out += ", ";
    NodeToJson(p.children[i], out);
  }
  *out += "]}";
}

}  // namespace

uint64_t OperatorProfile::rows_in() const {
  uint64_t in = 0;
  for (const auto& c : children) in += c.rows_out;
  return in;
}

Status OperatorProfile::MergeFrom(const OperatorProfile& other) {
  if (name != other.name || children.size() != other.children.size()) {
    return Status::InvalidArgument(
        StrFormat("profile shape mismatch: %s/%zu vs %s/%zu", name.c_str(),
                  children.size(), other.name.c_str(),
                  other.children.size()));
  }
  rows_out += other.rows_out;
  batches += other.batches;
  seconds += other.seconds;
  est_memory_bytes += other.est_memory_bytes;
  if (pipeline_id < 0) pipeline_id = other.pipeline_id;
  for (size_t i = 0; i < children.size(); ++i) {
    Status s = children[i].MergeFrom(other.children[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status QueryProfile::MergeFrom(const QueryProfile& other) {
  if (engine != other.engine) {
    return Status::InvalidArgument("cannot merge profiles across engines: " +
                                   engine + " vs " + other.engine);
  }
  seconds += other.seconds;
  return root.MergeFrom(other.root);
}

std::string QueryProfile::ToText() const {
  std::string out = StrFormat("%s [%s]  total=%.3fms\n", label.c_str(),
                              engine.c_str(), seconds * 1e3);
  RenderNode(root, 0, &out);
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"label\": ";
  out += JsonQuote(label);
  out += ", \"engine\": ";
  out += JsonQuote(engine);
  out += ", \"seconds\": ";
  out += JsonNumber(seconds);
  out += ", \"root\": ";
  NodeToJson(root, &out);
  out += "}";
  return out;
}

}  // namespace xdbft::obs
