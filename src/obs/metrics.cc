#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace xdbft::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

namespace {

// Shared percentile estimator over fixed buckets: find the bucket holding
// the p-th observation, then interpolate linearly between its bounds.
// Bucket i spans (bounds[i-1], bounds[i]] — the first bucket interpolates
// from 0, and the +inf overflow bucket clamps to the last finite bound
// (there is nothing meaningful to interpolate toward).
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& counts, double p) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  const double target = p / 100.0 * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double prev = cumulative;
    cumulative += static_cast<double>(counts[i]);
    if (cumulative < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double frac = (target - prev) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  // target == total lands here only through rounding; clamp to the top of
  // the last non-empty bucket.
  for (size_t i = counts.size(); i-- > 0;) {
    if (counts[i] == 0) continue;
    return i >= bounds.size() ? (bounds.empty() ? 0.0 : bounds.back())
                              : bounds[i];
  }
  return 0.0;
}

}  // namespace

double Histogram::Percentile(double p) const {
  return PercentileFromBuckets(bounds_, bucket_counts(), p);
}

double MetricsSnapshot::HistogramData::Percentile(double p) const {
  return PercentileFromBuckets(bounds, bucket_counts, p);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundsSeconds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>;
    for (double v = 0.001; v < 200.0; v *= 4.0) b->push_back(v);
    return b;
  }();
  return *bounds;
}

const std::vector<double>& MicroLatencyBoundsSeconds() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>;
    for (double v = 1e-6; v < 8.0; v *= 4.0) b->push_back(v);
    return b;
  }();
  return *bounds;
}

std::string MetricsSnapshot::ToJson(bool compact) const {
  // `compact` emits a single line (for JSON-lines writers that embed the
  // snapshot in a larger one-line record); the default is indented for
  // human-readable report files.
  const char* item_first = compact ? "" : "\n    ";
  const char* item_next = compact ? ", " : ",\n    ";
  const char* close = compact ? "}" : "\n  }";
  std::string out = compact ? "{\"counters\": {" : "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? item_first : item_next;
    first = false;
    out += JsonQuote(name);
    out += ": ";
    out += JsonNumber(static_cast<double>(value));
  }
  out += close;
  out += compact ? ", \"gauges\": {" : ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? item_first : item_next;
    first = false;
    out += JsonQuote(name);
    out += ": ";
    out += JsonNumber(value);
  }
  out += close;
  out += compact ? ", \"histograms\": {" : ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? item_first : item_next;
    first = false;
    out += JsonQuote(name);
    out += ": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonNumber(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonNumber(static_cast<double>(h.bucket_counts[i]));
    }
    out += "], \"count\": ";
    out += JsonNumber(static_cast<double>(h.count));
    out += ", \"sum\": ";
    out += JsonNumber(h.sum);
    out += "}";
  }
  out += close;
  out += compact ? "}" : "\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.bucket_counts = h->bucket_counts();
    data.count = h->count();
    data.sum = h->sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace xdbft::obs
