#include "obs/flight_recorder.h"

#include <algorithm>

namespace xdbft::obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]),
      epoch_(std::chrono::steady_clock::now()) {}

void FlightRecorder::Record(const char* category, const char* message,
                            int64_t a, int64_t b) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  // Claim the slot; if a concurrent writer (lapped ring) or a reader holds
  // it, drop instead of spinning — the recorder never blocks its caller.
  if (slot.busy.exchange(1, std::memory_order_acquire) != 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.event.seq = ticket + 1;
  slot.event.t_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
          .count();
  slot.event.category = category;
  slot.event.message = message;
  slot.event.a = a;
  slot.event.b = b;
  slot.busy.store(0, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Tail() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    if (slot.busy.exchange(1, std::memory_order_acquire) != 0) continue;
    if (slot.event.seq != 0) out.push_back(slot.event);
    slot.busy.store(0, std::memory_order_release);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

uint64_t FlightRecorder::recorded() const {
  return next_.load(std::memory_order_relaxed) -
         dropped_.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void FlightRecorder::Clear() {
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    if (slot.busy.exchange(1, std::memory_order_acquire) != 0) continue;
    slot.event = FlightEvent{};
    slot.busy.store(0, std::memory_order_release);
  }
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

}  // namespace xdbft::obs
