#include "obs/trace.h"

#include <fstream>

#include "common/string_util.h"
#include "obs/json.h"

namespace xdbft::obs {

TraceArg NumArg(const std::string& key, double value) {
  return TraceArg{key, JsonNumber(value)};
}

TraceArg IntArg(const std::string& key, int64_t value) {
  return TraceArg{key, StrFormat("%lld", static_cast<long long>(value))};
}

TraceArg StrArg(const std::string& key, const std::string& value) {
  return TraceArg{key, JsonQuote(value)};
}

void TraceRecorder::Add(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddComplete(const std::string& name,
                                const std::string& category, double ts_us,
                                double dur_us, int pid, int tid,
                                std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  Add(std::move(e));
}

void TraceRecorder::AddInstant(const std::string& name,
                               const std::string& category, double ts_us,
                               int pid, int tid, std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  Add(std::move(e));
}

void TraceRecorder::SetProcessName(int pid, const std::string& name) {
  TraceEvent e;
  e.name = "process_name";
  e.category = "__metadata";
  e.phase = 'M';
  e.pid = pid;
  e.args.push_back(StrArg("name", name));
  Add(std::move(e));
}

void TraceRecorder::SetThreadName(int pid, int tid, const std::string& name) {
  TraceEvent e;
  e.name = "thread_name";
  e.category = "__metadata";
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.args.push_back(StrArg("name", name));
  Add(std::move(e));
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": ";
    out += JsonQuote(e.name);
    out += ", \"cat\": ";
    out += JsonQuote(e.category);
    out += ", \"ph\": \"";
    out += e.phase;
    out += "\", \"ts\": ";
    out += JsonNumber(e.ts_us);
    if (e.phase == 'X') {
      out += ", \"dur\": ";
      out += JsonNumber(e.dur_us);
    }
    if (e.phase == 'i') out += ", \"s\": \"t\"";  // thread-scoped instant
    out += StrFormat(", \"pid\": %d, \"tid\": %d", e.pid, e.tid);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out += ", ";
        out += JsonQuote(e.args[a].key);
        out += ": ";
        out += e.args[a].json_value;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  out << ToJson();
  if (!out.good()) {
    return Status::Internal("failed writing trace output file: " + path);
  }
  return Status::OK();
}

void NameWorkerLanes(TraceRecorder* trace, int pid, int num_workers,
                     const std::string& coordinator_name) {
  if (trace == nullptr) return;
  for (int k = 0; k < num_workers; ++k) {
    trace->SetThreadName(pid, k, "worker " + std::to_string(k));
  }
  trace->SetThreadName(pid, num_workers, coordinator_name);
}

}  // namespace xdbft::obs
