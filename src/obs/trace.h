// TraceRecorder: collects Chrome trace-event-format events ("X" complete
// spans, "i" instant events, "M" metadata) and serializes them to the JSON
// object form ({"traceEvents": [...]}) that chrome://tracing and Perfetto
// load directly. Timestamps are microseconds; callers either stamp events
// with real wall time (NowMicros(), used by the in-process executor) or
// with virtual time (the discrete-event cluster simulator maps simulated
// seconds to microseconds). Thread-safe; events may be added concurrently.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace xdbft::obs {

/// \brief One "args" entry of a trace event, value pre-rendered as a JSON
/// literal (use the factories to get escaping right).
struct TraceArg {
  std::string key;
  std::string json_value;
};

TraceArg NumArg(const std::string& key, double value);
TraceArg IntArg(const std::string& key, int64_t value);
TraceArg StrArg(const std::string& key, const std::string& value);

/// \brief One trace event in Chrome trace-event format.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';      // 'X' complete, 'i' instant, 'M' metadata
  double ts_us = 0.0;    // event start, microseconds
  double dur_us = 0.0;   // 'X' only
  int pid = 0;
  int tid = 0;
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  /// \brief Microseconds of real time since this recorder was created
  /// (the timestamp base for wall-clock spans).
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// \brief A span [ts_us, ts_us + dur_us] on lane (pid, tid).
  void AddComplete(const std::string& name, const std::string& category,
                   double ts_us, double dur_us, int pid, int tid,
                   std::vector<TraceArg> args = {});

  /// \brief A zero-duration marker (rendered as an arrow/tick).
  void AddInstant(const std::string& name, const std::string& category,
                  double ts_us, int pid, int tid,
                  std::vector<TraceArg> args = {});

  /// \brief Label the (pid) process / (pid, tid) thread lane in the viewer.
  void SetProcessName(int pid, const std::string& name);
  void SetThreadName(int pid, int tid, const std::string& name);

  size_t num_events() const;
  void Clear();

  /// \brief `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  void Add(TraceEvent event);

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// \brief Labels the per-worker lanes of a task-pool client: tid k in
/// [0, num_workers) becomes "worker k" and tid num_workers becomes
/// `coordinator_name` (the submitting/orchestrating thread — the
/// convention the parallel executor and enumerator share). A null
/// recorder disables it.
void NameWorkerLanes(TraceRecorder* trace, int pid, int num_workers,
                     const std::string& coordinator_name = "coordinator");

/// \brief RAII wall-clock span: records a complete event over the scope's
/// lifetime. A null recorder disables it.
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(TraceRecorder* recorder, std::string name,
                  std::string category, int tid,
                  std::vector<TraceArg> args = {})
      : recorder_(recorder),
        name_(std::move(name)),
        category_(std::move(category)),
        tid_(tid),
        args_(std::move(args)),
        start_us_(recorder != nullptr ? recorder->NowMicros() : 0.0) {}

  ~ScopedTraceSpan() {
    if (recorder_ == nullptr) return;
    recorder_->AddComplete(name_, category_, start_us_,
                           recorder_->NowMicros() - start_us_, /*pid=*/0,
                           tid_, std::move(args_));
  }

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  int tid_;
  std::vector<TraceArg> args_;
  double start_us_;
};

}  // namespace xdbft::obs
