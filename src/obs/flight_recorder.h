// Abort flight recorder: a fixed-size lock-free ring buffer of recent
// structured events. Writers are wait-free in the common case: a ticket
// from a single fetch_add picks the slot, and the slot is claimed with an
// atomic exchange on a per-slot busy flag. If a slot is busy (another
// writer or a reader holds it), the event is dropped and counted rather
// than blocking — the recorder is a black box for post-mortems, not a
// reliable log. Readers claim slots the same way, so there are no seqlock
// retry loops and the whole structure is clean under TSan.
//
// Use the XDBFT_FLIGHT macro on hot-ish paths: it compiles to nothing
// under XDBFT_DISABLE_METRICS, including its argument expressions.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xdbft::obs {

struct FlightEvent {
  uint64_t seq = 0;        // 1-based global record order
  double t_seconds = 0.0;  // seconds since recorder creation (or Clear)
  std::string category;    // e.g. "executor", "simulator", "crosscheck"
  std::string message;     // static-ish description; no formatting cost
  int64_t a = 0;           // event-specific values (stage/slot/seed/...)
  int64_t b = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const char* category, const char* message, int64_t a = 0,
              int64_t b = 0);

  // Events still resident in the ring, oldest first. Events whose slot is
  // mid-write are skipped (they count as dropped from this snapshot only).
  std::vector<FlightEvent> Tail() const;

  // Total events accepted / dropped since construction or Clear().
  uint64_t recorded() const;
  uint64_t dropped() const;

  // Empties the ring and resets counters and the time epoch. Not safe to
  // run concurrently with writers that must not be dropped; intended for
  // test setup and between-run resets on the coordinator.
  void Clear();

  size_t capacity() const { return capacity_; }

  // Process-wide recorder used by the XDBFT_FLIGHT macro.
  static FlightRecorder& Default();

 private:
  struct Slot {
    std::atomic<uint32_t> busy{0};
    FlightEvent event;  // guarded by busy
  };

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace xdbft::obs

#if !defined(XDBFT_DISABLE_METRICS)
#define XDBFT_FLIGHT(category, message, a, b)                               \
  ::xdbft::obs::FlightRecorder::Default().Record((category), (message), (a), \
                                                 (b))
#else
#define XDBFT_FLIGHT(category, message, a, b) \
  do {                                        \
  } while (false)
#endif
