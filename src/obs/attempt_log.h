// FT attempt timeline: a per-stage attempt ledger recorded by the
// fault-tolerant executor (real wall-clock seconds, coordinator-side) and
// the cluster simulator (virtual seconds, single-threaded). One record
// per dispatched attempt; killed attempts carry the failure-detection
// time in finish_seconds, and rows_lost is backfilled on records whose
// output was later invalidated by a node failure.
//
// AttemptTimeline is not thread-safe: both producers record from a single
// thread by contract (the executor's wave loop, the simulator's event
// loop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xdbft::obs {

struct AttemptRecord {
  std::string label;            // stage / collapsed-operator label
  int stage = -1;               // stage index; -1 when not applicable
  int node = -1;                // partition / node index; -1 for global
  int attempt = 0;              // 0-based attempt number for this unit
  double dispatch_seconds = 0;  // time the attempt started
  double finish_seconds = 0;    // finish, or failure-detection time if killed
  bool killed = false;
  uint64_t rows_out = 0;   // rows produced (executor only; 0 in simulator)
  uint64_t rows_lost = 0;  // rows invalidated by a later failure
};

struct AttemptTimeline {
  std::vector<AttemptRecord> records;

  bool empty() const { return records.empty(); }

  // One line per attempt, dispatch-ordered, for logs and post-mortems.
  std::string ToText() const;
  // JSON array of attempt objects.
  std::string ToJson() const;
};

}  // namespace xdbft::obs
