// Per-operator query profiles: the EXPLAIN ANALYZE data model.
//
// Both engines fill the same tree shape (built from the vectorized plan
// by the exec layer), so per-operator row counts are directly comparable
// between the Volcano row engine and the morsel-driven vectorized engine.
//
// Time semantics differ by engine and are recorded honestly:
//   - row engine: inclusive wall seconds per operator (time spent inside
//     the operator and everything below it);
//   - vectorized engine: summed worker-busy seconds per operator,
//     accumulated per-morsel in worker-local slots and folded once at
//     pipeline finish (no locks or shared counters on the hot path).
// Rendering derives self time as max(0, seconds - sum(child seconds)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace xdbft::obs {

struct OperatorProfile {
  std::string name;               // operator kind, e.g. "HashAggregate"
  uint64_t rows_out = 0;          // rows produced by this operator
  uint64_t batches = 0;           // batches (vectorized) or Next batches (row)
  double seconds = 0.0;           // see header comment for engine semantics
  uint64_t est_memory_bytes = 0;  // breaker / build-side footprint estimate
  int pipeline_id = -1;           // vectorized pipeline index; -1 elsewhere
  std::vector<OperatorProfile> children;

  // Rows consumed, derived from children (0 for leaves).
  uint64_t rows_in() const;
  // Sums counters of a shape-identical tree into this one (used to merge
  // per-partition profiles of the same stage). Shape mismatch is an error.
  Status MergeFrom(const OperatorProfile& other);
};

struct QueryProfile {
  std::string label;   // stage or query label, e.g. "Q1/PartialAgg(L)"
  std::string engine;  // "row" or "vectorized"
  double seconds = 0.0;
  OperatorProfile root;

  Status MergeFrom(const QueryProfile& other);
  // EXPLAIN ANALYZE-style indented text tree.
  std::string ToText() const;
  // Self-contained JSON object (label/engine/seconds/root tree).
  std::string ToJson() const;
};

}  // namespace xdbft::obs
