// RunReport: a machine-readable record of one advisor/executor/simulator
// run — the identity of what ran (tool, plan, chosen materialization
// configuration, cluster/model parameters) bundled with a metrics snapshot.
// This is the document `xdbft_advisor --metrics-json` writes and the format
// the bench harnesses embed in their BENCH_*.json output.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"

namespace xdbft::obs {

struct RunReport {
  /// Which binary produced the report ("xdbft_advisor", "fig13_pruning").
  std::string tool;
  /// Plan identity (plan name; empty when not plan-scoped).
  std::string plan_name;
  /// Human-readable summary of the chosen configuration (materialized
  /// operator labels), when one was chosen.
  std::string config_summary;
  /// Free-form run parameters (nodes, mtbf_seconds, ...), values rendered
  /// as strings.
  std::map<std::string, std::string> params;
  /// Per-stage query profiles collected with --profile (may be empty).
  std::vector<QueryProfile> profiles;
  /// Point-in-time metrics at the end of the run.
  MetricsSnapshot metrics;

  /// \brief `{"tool": ..., "plan": ..., "config": ..., "params": {...},
  /// "profiles": [...], "metrics": {counters/gauges/histograms}}`.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;
};

}  // namespace xdbft::obs
