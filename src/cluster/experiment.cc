#include "cluster/experiment.h"

namespace xdbft::cluster {

const SchemeOutcome& ExperimentResult::outcome(ft::SchemeKind kind) const {
  for (const auto& s : schemes) {
    if (s.kind == kind) return s;
  }
  static const SchemeOutcome kEmpty{};
  return kEmpty;
}

Result<ExperimentResult> RunSchemeComparison(
    const plan::Plan& plan, const cost::ClusterStats& stats,
    const cost::CostModelParams& model, int num_traces, uint64_t seed,
    const SimulationOptions& sim_options) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(stats.Validate());
  XDBFT_RETURN_NOT_OK(model.Validate());

  ft::FtCostContext context;
  context.cluster = stats;
  context.model = model;

  SimulationOptions sim = sim_options;
  sim.pipe_constant = model.pipe_constant;
  sim.wal_write_cost = model.wal_write_cost;
  sim.wal_replay_factor = model.wal_replay_factor;
  ClusterSimulator simulator(stats, sim);
  XDBFT_ASSIGN_OR_RETURN(const double baseline,
                         simulator.BaselineRuntime(plan));

  ExperimentResult result;
  result.baseline_runtime = baseline;

  static constexpr ft::SchemeKind kAllSchemes[] = {
      ft::SchemeKind::kAllMat, ft::SchemeKind::kNoMatLineage,
      ft::SchemeKind::kNoMatRestart, ft::SchemeKind::kCostBased,
      ft::SchemeKind::kWriteAheadLineage};

  for (ft::SchemeKind kind : kAllSchemes) {
    XDBFT_ASSIGN_OR_RETURN(ft::SchemePlan sp,
                           ft::ApplyScheme(kind, plan, context));
    // Fresh trace objects per scheme, derived from the same seeds, so
    // every scheme sees exactly the same failure arrivals (§5.1).
    std::vector<ClusterTrace> traces =
        GenerateTraceSet(stats, num_traces, seed);
    XDBFT_ASSIGN_OR_RETURN(SimulationResult sim_result,
                           simulator.RunMany(sp, traces));
    SchemeOutcome outcome;
    outcome.kind = kind;
    outcome.completed = sim_result.completed;
    outcome.mean_runtime = sim_result.runtime;
    outcome.overhead_percent =
        sim_result.completed ? OverheadPercent(sim_result.runtime, baseline)
                             : 0.0;
    outcome.estimated_runtime = sp.estimated_cost;
    outcome.num_materialized = sp.config.NumMaterialized();
    outcome.restarts = sim_result.restarts;
    result.schemes.push_back(outcome);
  }
  return result;
}

}  // namespace xdbft::cluster
