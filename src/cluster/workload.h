// Mixed-workload simulation — the paper's motivating scenario (§1):
// "analytical workloads which consist of a mix of queries with a strongly
// varying runtime ranging from seconds to multiple hours as commonly found
// in real deployments [16]". A workload is a set of queries with arrival
// times executed back-to-back on a shared cluster; each fault-tolerance
// scheme is applied workload-wide, and per-query latencies are compared.
// The cost-based scheme is the only one that picks a different
// materialization configuration per query.
#pragma once

#include <string>
#include <vector>

#include "cluster/simulator.h"
#include "ft/scheme.h"

namespace xdbft::cluster {

/// \brief One query of a workload.
struct WorkloadQuery {
  std::string label;
  plan::Plan plan;
  /// Submission time (seconds since workload start). Queries run in
  /// arrival order; a query starts at max(arrival, previous finish) — the
  /// cluster executes one query at a time, like the paper's experiments.
  double arrival_seconds = 0.0;
};

/// \brief Per-query outcome under one scheme.
struct WorkloadQueryOutcome {
  std::string label;
  bool completed = false;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  /// Runtime under failures (finish - start).
  double runtime_seconds = 0.0;
  /// Pure runtime without failures/extra materialization.
  double baseline_seconds = 0.0;
  double overhead_percent = 0.0;
};

/// \brief Workload-level outcome under one scheme.
struct WorkloadOutcome {
  ft::SchemeKind scheme = ft::SchemeKind::kCostBased;
  std::vector<WorkloadQueryOutcome> queries;
  /// Time until the last query finished.
  double makespan_seconds = 0.0;
  /// Mean overhead over completed queries, percent.
  double mean_overhead_percent = 0.0;
  /// Queries that did not finish (aborted full restarts).
  int aborted = 0;
};

/// \brief Simulate `workload` under `scheme` on the given cluster, using
/// one continuous failure-trace set (failures keep arriving across query
/// boundaries, so a late query can inherit a bad patch of the trace).
Result<WorkloadOutcome> SimulateWorkload(
    const std::vector<WorkloadQuery>& workload, ft::SchemeKind scheme,
    const cost::ClusterStats& stats, const cost::CostModelParams& model = {},
    uint64_t trace_seed = 42, const SimulationOptions& options = {});

/// \brief Run all five schemes (§5.2's four plus write-ahead lineage) over
/// the same workload and traces.
Result<std::vector<WorkloadOutcome>> CompareSchemesOnWorkload(
    const std::vector<WorkloadQuery>& workload,
    const cost::ClusterStats& stats, const cost::CostModelParams& model = {},
    uint64_t trace_seed = 42, const SimulationOptions& options = {});

/// \brief The pipelined / streaming query shape write-ahead lineage exists
/// for: one scan feeding a deep chain of `depth` streaming stages whose
/// intermediate volumes (tm) are large relative to their compute (tr).
/// Blocking materialization pays the full volume at every stage here,
/// while the lineage log is a fraction of it. `runtime_scale` multiplies
/// every per-stage cost — larger values push the query deeper into the
/// long-runtime regime where WAL beats restart-from-scratch.
plan::Plan MakePipelinedQuery(int depth, double runtime_scale,
                              const std::string& name = "pipelined");

/// \brief `count` pipelined queries arriving back-to-back (arrival 0).
std::vector<WorkloadQuery> MakePipelinedWorkload(int count, int depth,
                                                 double runtime_scale);

}  // namespace xdbft::cluster
