#include "cluster/failure_trace.h"

#include <algorithm>

namespace xdbft::cluster {

void FailureTrace::ExtendPast(double t) {
  if (mtbf_ == kNeverFails) return;
  // Generate in chunks comfortably past t so repeated queries are cheap.
  while (generated_until_ <= t) {
    const double last = times_.empty() ? 0.0 : times_.back();
    const double next = last + rng_.NextExponential(mtbf_);
    times_.push_back(next);
    generated_until_ = next;
  }
}

double FailureTrace::NextFailureAfter(double t) {
  if (mtbf_ == kNeverFails) return kNeverFails;
  ExtendPast(t);
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  // ExtendPast guarantees times_.back() > t.
  return *it;
}

size_t FailureTrace::CountFailuresUntil(double t) {
  if (mtbf_ == kNeverFails || t <= 0.0) return 0;
  ExtendPast(t);
  return static_cast<size_t>(
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
}

ClusterTrace ClusterTrace::Generate(const cost::ClusterStats& stats,
                                    uint64_t seed) {
  ClusterTrace ct;
  ct.nodes_.reserve(static_cast<size_t>(stats.num_nodes));
  for (int i = 0; i < stats.num_nodes; ++i) {
    uint64_t s = seed;
    // Derive a well-mixed per-node seed.
    s ^= 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1);
    uint64_t state = s;
    ct.nodes_.emplace_back(stats.mtbf_seconds, SplitMix64(state));
  }
  return ct;
}

double ClusterTrace::NextFailureAfter(double t, int* which_node) {
  double best = kNeverFails;
  int best_node = -1;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const double f = nodes_[i].NextFailureAfter(t);
    if (f < best) {
      best = f;
      best_node = static_cast<int>(i);
    }
  }
  if (which_node != nullptr) *which_node = best_node;
  return best;
}

std::vector<ClusterTrace> GenerateTraceSet(const cost::ClusterStats& stats,
                                           int count, uint64_t base_seed) {
  std::vector<ClusterTrace> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(ClusterTrace::Generate(
        stats, base_seed + 0x517cc1b727220a95ULL * static_cast<uint64_t>(i)));
  }
  return out;
}

}  // namespace xdbft::cluster
