#include "cluster/failure_trace.h"

#include <algorithm>

namespace xdbft::cluster {

FailureTrace::FailureTrace(double mtbf_seconds, uint64_t seed,
                           std::vector<double> scheduled)
    : mtbf_(mtbf_seconds), rng_(seed), scheduled_(std::move(scheduled)) {
  scheduled_.erase(std::remove_if(scheduled_.begin(), scheduled_.end(),
                                  [](double t) { return t <= 0.0; }),
                   scheduled_.end());
  std::sort(scheduled_.begin(), scheduled_.end());
}

void FailureTrace::ExtendPast(double t) {
  if (mtbf_ == kNeverFails) return;
  // Generate in chunks comfortably past t so repeated queries are cheap.
  while (generated_until_ <= t) {
    const double last = times_.empty() ? 0.0 : times_.back();
    const double next = last + rng_.NextExponential(mtbf_);
    times_.push_back(next);
    generated_until_ = next;
  }
}

double FailureTrace::NextFailureAfter(double t) {
  double next = kNeverFails;
  if (mtbf_ != kNeverFails) {
    ExtendPast(t);
    // ExtendPast guarantees times_.back() > t.
    next = *std::upper_bound(times_.begin(), times_.end(), t);
  }
  auto it = std::upper_bound(scheduled_.begin(), scheduled_.end(), t);
  if (it != scheduled_.end()) next = std::min(next, *it);
  return next;
}

size_t FailureTrace::CountFailuresUntil(double t) {
  if (t <= 0.0) return 0;
  size_t count = static_cast<size_t>(
      std::upper_bound(scheduled_.begin(), scheduled_.end(), t) -
      scheduled_.begin());
  if (mtbf_ != kNeverFails) {
    ExtendPast(t);
    count += static_cast<size_t>(
        std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
  }
  return count;
}

ClusterTrace ClusterTrace::Generate(const cost::ClusterStats& stats,
                                    uint64_t seed) {
  ClusterTrace ct;
  ct.nodes_.reserve(static_cast<size_t>(stats.num_nodes));
  for (int i = 0; i < stats.num_nodes; ++i) {
    uint64_t s = seed;
    // Derive a well-mixed per-node seed.
    s ^= 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1);
    uint64_t state = s;
    ct.nodes_.emplace_back(stats.mtbf_seconds, SplitMix64(state));
  }
  return ct;
}

Status BurstOptions::Validate() const {
  if (!(mean_interval > 0.0)) {
    return Status::InvalidArgument("burst mean_interval must be > 0");
  }
  if (!(horizon > 0.0)) {
    return Status::InvalidArgument("burst horizon must be > 0");
  }
  if (width < 0.0) {
    return Status::InvalidArgument("burst width must be >= 0");
  }
  if (min_nodes < 1 || max_nodes < min_nodes) {
    return Status::InvalidArgument(
        "burst victim range requires 1 <= min_nodes <= max_nodes");
  }
  if (!(background_mtbf > 0.0)) {
    return Status::InvalidArgument("burst background_mtbf must be > 0");
  }
  return Status::OK();
}

ClusterTrace ClusterTrace::GenerateWithBursts(const cost::ClusterStats& stats,
                                              uint64_t seed,
                                              const BurstOptions& burst) {
  // The burst process draws from its own stream (decorrelated from the
  // per-node background seeds below) so adding bursts never perturbs the
  // background Poisson times of the plain Generate() trace for `seed`.
  uint64_t burst_state = seed ^ 0xd1b54a32d192ed03ULL;
  Rng rng(SplitMix64(burst_state));
  std::vector<std::vector<double>> scheduled(
      static_cast<size_t>(stats.num_nodes));
  std::vector<int> victims(static_cast<size_t>(stats.num_nodes));
  for (int i = 0; i < stats.num_nodes; ++i) {
    victims[static_cast<size_t>(i)] = i;
  }
  const int lo = std::min(burst.min_nodes, stats.num_nodes);
  const int hi = std::min(burst.max_nodes, stats.num_nodes);
  for (double t = rng.NextExponential(burst.mean_interval);
       t <= burst.horizon; t += rng.NextExponential(burst.mean_interval)) {
    rng.Shuffle(victims);
    const int count =
        lo + static_cast<int>(rng.NextBounded(
                 static_cast<uint64_t>(hi - lo) + 1));
    for (int v = 0; v < count; ++v) {
      scheduled[static_cast<size_t>(victims[static_cast<size_t>(v)])]
          .push_back(t + rng.NextDouble() * burst.width);
    }
  }
  ClusterTrace ct;
  ct.nodes_.reserve(static_cast<size_t>(stats.num_nodes));
  for (int i = 0; i < stats.num_nodes; ++i) {
    // Same per-node seed derivation as Generate() so the background
    // process is the plain trace for `seed` when background_mtbf matches.
    uint64_t s = seed;
    s ^= 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1);
    uint64_t state = s;
    ct.nodes_.emplace_back(burst.background_mtbf, SplitMix64(state),
                           std::move(scheduled[static_cast<size_t>(i)]));
  }
  return ct;
}

ClusterTrace ClusterTrace::FromScheduled(
    std::vector<std::vector<double>> scheduled) {
  ClusterTrace ct;
  ct.nodes_.reserve(scheduled.size());
  for (auto& times : scheduled) {
    ct.nodes_.emplace_back(kNeverFails, 0, std::move(times));
  }
  return ct;
}

double ClusterTrace::NextFailureAfter(double t, int* which_node) {
  double best = kNeverFails;
  int best_node = -1;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const double f = nodes_[i].NextFailureAfter(t);
    if (f < best) {
      best = f;
      best_node = static_cast<int>(i);
    }
  }
  if (which_node != nullptr) *which_node = best_node;
  return best;
}

std::vector<ClusterTrace> GenerateTraceSet(const cost::ClusterStats& stats,
                                           int count, uint64_t base_seed) {
  std::vector<ClusterTrace> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(ClusterTrace::Generate(
        stats, base_seed + 0x517cc1b727220a95ULL * static_cast<uint64_t>(i)));
  }
  return out;
}

std::vector<ClusterTrace> GenerateBurstTraceSet(
    const cost::ClusterStats& stats, const BurstOptions& burst, int count,
    uint64_t base_seed) {
  std::vector<ClusterTrace> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(ClusterTrace::GenerateWithBursts(
        stats,
        base_seed + 0x517cc1b727220a95ULL * static_cast<uint64_t>(i),
        burst));
  }
  return out;
}

}  // namespace xdbft::cluster
