// Failure traces: per-node failure timestamps with exponential
// inter-arrival times (paper §2.2 and §5.1: "we created 10 failure traces
// for each unique MTBF using an exponential distribution where
// lambda = 1/MTBF and used the same set of traces for injecting failures").
#pragma once

#include <limits>
#include <vector>

#include "common/rng.h"
#include "cost/cost_params.h"

namespace xdbft::cluster {

constexpr double kNeverFails = std::numeric_limits<double>::infinity();

/// \brief Failure timestamps of a single node. Times are generated lazily
/// and deterministically from the seed, so a trace can be queried
/// arbitrarily far into simulated time.
class FailureTrace {
 public:
  FailureTrace() : FailureTrace(kNeverFails, 0) {}

  /// \brief A node failing on average every `mtbf_seconds` (exponential
  /// inter-arrivals). Pass kNeverFails for a failure-free node.
  FailureTrace(double mtbf_seconds, uint64_t seed)
      : mtbf_(mtbf_seconds), rng_(seed) {}

  /// \brief Earliest failure time strictly greater than `t`.
  double NextFailureAfter(double t);

  /// \brief Number of failures in (0, t]. Extends the trace as needed.
  size_t CountFailuresUntil(double t);

  double mtbf() const { return mtbf_; }

 private:
  void ExtendPast(double t);

  double mtbf_;
  Rng rng_;
  std::vector<double> times_;
  double generated_until_ = 0.0;
};

/// \brief One failure trace per cluster node.
class ClusterTrace {
 public:
  /// \brief Independent per-node traces; node i is seeded with
  /// hash(seed, i) so different seeds give statistically independent trace
  /// sets (the "10 traces per MTBF" of §5.1 are seeds 0..9).
  static ClusterTrace Generate(const cost::ClusterStats& stats,
                               uint64_t seed);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  FailureTrace& node(int i) { return nodes_[static_cast<size_t>(i)]; }

  /// \brief Earliest failure strictly after `t` on any node; also reports
  /// which node fails (-1 if none ever).
  double NextFailureAfter(double t, int* which_node = nullptr);

 private:
  std::vector<FailureTrace> nodes_;
};

/// \brief The standard experiment setup: `count` independent trace sets.
std::vector<ClusterTrace> GenerateTraceSet(const cost::ClusterStats& stats,
                                           int count, uint64_t base_seed);

}  // namespace xdbft::cluster
