// Failure traces: per-node failure timestamps with exponential
// inter-arrival times (paper §2.2 and §5.1: "we created 10 failure traces
// for each unique MTBF using an exponential distribution where
// lambda = 1/MTBF and used the same set of traces for injecting failures").
#pragma once

#include <limits>
#include <vector>

#include "common/rng.h"
#include "cost/cost_params.h"

namespace xdbft::cluster {

constexpr double kNeverFails = std::numeric_limits<double>::infinity();

/// \brief Failure timestamps of a single node. Times are generated lazily
/// and deterministically from the seed, so a trace can be queried
/// arbitrarily far into simulated time.
class FailureTrace {
 public:
  FailureTrace() : FailureTrace(kNeverFails, 0) {}

  /// \brief A node failing on average every `mtbf_seconds` (exponential
  /// inter-arrivals). Pass kNeverFails for a failure-free node.
  FailureTrace(double mtbf_seconds, uint64_t seed)
      : mtbf_(mtbf_seconds), rng_(seed) {}

  /// \brief Like above, plus a fixed list of `scheduled` failure times
  /// superimposed on the Poisson process (used for correlated burst
  /// injection, where one event strikes several nodes at once). The list
  /// is sorted internally; non-positive entries are ignored.
  FailureTrace(double mtbf_seconds, uint64_t seed,
               std::vector<double> scheduled);

  /// \brief Earliest failure time strictly greater than `t`.
  double NextFailureAfter(double t);

  /// \brief Number of failures in (0, t]. Extends the trace as needed.
  size_t CountFailuresUntil(double t);

  double mtbf() const { return mtbf_; }

 private:
  void ExtendPast(double t);

  double mtbf_;
  Rng rng_;
  std::vector<double> times_;
  /// Deterministic extra failures merged into the process at query time.
  std::vector<double> scheduled_;
  double generated_until_ = 0.0;
};

/// \brief Correlated multi-node failure bursts: realistic traces (rack
/// power events, switch failures, cascading OOM) are not independent
/// per-node Poisson processes — several nodes die inside one short
/// window. A burst process with exponential inter-arrival `mean_interval`
/// picks `min_nodes..max_nodes` distinct victims per burst and schedules
/// one failure for each inside `[burst_time, burst_time + width]`.
struct BurstOptions {
  /// Mean seconds between bursts (exponential inter-arrivals).
  double mean_interval = 600.0;
  /// Bursts are generated on (0, horizon]; beyond it only the background
  /// per-node Poisson process fires.
  double horizon = 1.0e5;
  /// Width of the kill window: victims fail at burst_time + U*[0, width].
  double width = 2.0;
  /// Victims per burst, uniform in [min_nodes, max_nodes], capped at the
  /// cluster size.
  int min_nodes = 2;
  int max_nodes = 4;
  /// Per-node MTBF of the background Poisson process superimposed under
  /// the bursts; kNeverFails disables it (bursts only).
  double background_mtbf = kNeverFails;

  Status Validate() const;
};

/// \brief One failure trace per cluster node.
class ClusterTrace {
 public:
  /// \brief Independent per-node traces; node i is seeded with
  /// hash(seed, i) so different seeds give statistically independent trace
  /// sets (the "10 traces per MTBF" of §5.1 are seeds 0..9).
  static ClusterTrace Generate(const cost::ClusterStats& stats,
                               uint64_t seed);

  /// \brief Burst traces per `burst` (correlated multi-node failures) on
  /// top of the background Poisson process burst.background_mtbf (NOT
  /// stats.mtbf_seconds, which describes the independent model the
  /// analytic layers assume). Deterministic in `seed`.
  static ClusterTrace GenerateWithBursts(const cost::ClusterStats& stats,
                                         uint64_t seed,
                                         const BurstOptions& burst);

  /// \brief A fully deterministic trace: node i fails exactly at
  /// `scheduled[i]` (sorted internally, non-positive entries ignored) and
  /// never otherwise. For crafted regression tests of detection / MTTR
  /// timing.
  static ClusterTrace FromScheduled(
      std::vector<std::vector<double>> scheduled);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  FailureTrace& node(int i) { return nodes_[static_cast<size_t>(i)]; }

  /// \brief Earliest failure strictly after `t` on any node; also reports
  /// which node fails (-1 if none ever).
  double NextFailureAfter(double t, int* which_node = nullptr);

 private:
  std::vector<FailureTrace> nodes_;
};

/// \brief The standard experiment setup: `count` independent trace sets.
std::vector<ClusterTrace> GenerateTraceSet(const cost::ClusterStats& stats,
                                           int count, uint64_t base_seed);

/// \brief `count` independent burst trace sets (see GenerateWithBursts).
std::vector<ClusterTrace> GenerateBurstTraceSet(
    const cost::ClusterStats& stats, const BurstOptions& burst, int count,
    uint64_t base_seed);

}  // namespace xdbft::cluster
