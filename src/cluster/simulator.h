// ClusterSimulator: discrete-event execution of a fault-tolerant plan
// [P, M_P] on a simulated shared-nothing cluster with injected failures.
//
// This substitutes for the paper's physical 10-node XDB/MySQL testbed
// (§5.1): collapsed operators execute partition-parallel on every node
// (each node processes its partition in t(c) seconds), inter-operator
// parallelism follows the collapsed DAG, intermediates are written to
// fault-tolerant storage and never lost (§2.2), and a failure of node k
// while it executes a sub-plan restarts that sub-plan on that node after
// MTTR. Recovery granularity follows ft::RecoveryMode:
//   kFineGrained  - only the failed sub-plan (collapsed op x partition)
//                   restarts from its last materialized inputs; under a
//                   no-mat configuration this degenerates to lineage-style
//                   recomputation of the failed partition's full chain.
//   kFullRestart  - any failure during execution restarts the entire query
//                   (the parallel-database strategy); aborts after
//                   max_restarts attempts, as the paper aborts after 100.
//   kWalReplay    - write-ahead lineage: sub-plans log lineage ahead of
//                   their results (paying wal_write_cost up front); a
//                   failed partition replays the logged frontier at
//                   wal_replay_factor speed instead of recomputing, and
//                   logged progress survives the failure.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "cluster/failure_trace.h"
#include "cost/cost_params.h"
#include "ft/collapsed_plan.h"
#include "ft/scheme.h"
#include "obs/attempt_log.h"
#include "obs/trace.h"

namespace xdbft::cluster {

/// \brief Simulator knobs.
struct SimulationOptions {
  /// CONST_pipe used when collapsing the plan for execution.
  double pipe_constant = 1.0;
  /// Abort the query after this many restarts (paper: 100). Full restart
  /// counts query restarts; fine-grained recovery counts the restarts of
  /// each retry unit (collapsed op x node, or checkpoint segment)
  /// separately — the same per-task cap the FaultTolerantExecutor's
  /// max_attempts enforces — so both recovery schemes share one abort
  /// semantics and can be compared fairly under extreme failure rates.
  int max_restarts = 100;
  /// Per-partition execution-time skew: node k's duration for a collapsed
  /// op is t(c) * (1 + skew * u_k) with u_k deterministic in [-1, 1].
  /// 0 = perfectly balanced partitions (paper's co-partitioned TPC-H).
  double partition_skew = 0.0;
  /// The coordinator polls sub-plans every `monitoring_interval` seconds
  /// (paper §5.1 used 2 s): a failure at time f is detected at the next
  /// monitoring tick, and redeployment (MTTR) starts then. 0 = immediate
  /// detection (the default; the paper folds the average detection delay
  /// into its MTTR=1 s).
  double monitoring_interval = 0.0;
  /// Intra-operator checkpointing (the paper's §7 extension, see
  /// ft/checkpointing.h): sub-plans longer than `checkpoint_interval`
  /// write an operator-state checkpoint every interval seconds of
  /// progress (costing `checkpoint_cost` each); a failure repeats only
  /// the current segment. 0 disables (paper behavior).
  double checkpoint_interval = 0.0;
  double checkpoint_cost = 1.0;
  /// Write-ahead lineage (used when recovery == kWalReplay): every
  /// sub-plan logs lineage ahead of its results, inflating its duration by
  /// wal_write_cost * lineage_volume; a failed partition replays the
  /// logged frontier at `wal_replay_factor` of the original speed instead
  /// of recomputing from the materialized inputs. Progress already logged
  /// survives failures. Mirrors CostModelParams::wal_*.
  double wal_write_cost = 0.0;
  double wal_replay_factor = 1.0;
  /// When set, the discrete-event timeline is exported into this recorder
  /// as Chrome trace spans on *virtual* time (1 simulated second = 1 ms in
  /// the viewer; lane = node): sub-plan runs, killed attempts, failure
  /// markers, detection and MTTR waits, and full-query restarts. The
  /// recorder must outlive the simulator calls. Null disables.
  obs::TraceRecorder* trace = nullptr;
  /// Trace process id for the emitted spans, so simulator (virtual-time)
  /// lanes can be kept apart from executor (wall-clock) lanes when both
  /// write into one recorder.
  int trace_pid = 0;
  /// When set, every simulated task attempt (killed and successful, plus
  /// full-query restarts) is appended as an AttemptRecord on *virtual*
  /// time: dispatch = attempt start, finish = completion or failure
  /// instant. The timeline must outlive the simulator calls; records
  /// accumulate across Run/RunMany invocations. Null (default) disables.
  obs::AttemptTimeline* attempt_log = nullptr;
};

/// \brief Outcome of one simulated execution (or, for RunMany, the
/// aggregate over a trace set).
struct SimulationResult {
  /// True unless the run (any trace, for RunMany) hit max_restarts.
  bool completed = false;
  /// Wall-clock runtime of the query under the injected failures. For a
  /// single aborted run this is the time burned before giving up.
  ///
  /// RunMany contract: `runtime`/`runtime_p50`/`runtime_p95` are computed
  /// on a *completed-trace basis* — the mean/percentiles over the traces
  /// that finished. Aborted traces are reported separately: `aborted` is
  /// their count and `aborted_seconds` the *mean* time they burned before
  /// giving up, so no cluster time ever silently vanishes from the
  /// aggregate. Only when every trace aborts do the runtime fields fall
  /// back to the time-spent basis of the aborted runs (an impossible
  /// workload must not look like an instant success).
  double runtime = 0.0;
  /// Number of sub-plan restarts (fine-grained) or query restarts (full).
  int restarts = 0;
  /// Failures that actually interrupted running work.
  int failures_hit = 0;
  /// Aborted executions: 1 for a single run that hit max_restarts, the
  /// aborted-trace count for RunMany.
  int aborted = 0;
  /// Time an aborted run burned before giving up (mean over the aborted
  /// traces for RunMany; equal to `runtime` for a single aborted run).
  double aborted_seconds = 0.0;
  /// RunMany only: median and 95th-percentile runtimes over the
  /// completed traces (equal to `runtime` for single runs; over the
  /// time-spent of aborted runs when nothing completed).
  double runtime_p50 = 0.0;
  double runtime_p95 = 0.0;

  std::string ToString() const;
};

/// \brief Simulated shared-nothing cluster executing fault-tolerant plans.
class ClusterSimulator {
 public:
  ClusterSimulator(cost::ClusterStats stats, SimulationOptions options = {})
      : stats_(stats), options_(options) {}

  /// \brief Execute [plan, config] under `recovery`, injecting failures
  /// from `trace`. The trace is advanced (lazily extended) as needed.
  /// `start_time` places the query on the trace's timeline (used by the
  /// workload simulator so consecutive queries share one failure
  /// history); the returned runtime is finish - start_time.
  Result<SimulationResult> Run(const plan::Plan& plan,
                               const ft::MaterializationConfig& config,
                               ft::RecoveryMode recovery,
                               ClusterTrace& trace,
                               double start_time = 0.0) const;

  /// \brief Execute a scheme-instantiated plan.
  Result<SimulationResult> Run(const ft::SchemePlan& scheme,
                               ClusterTrace& trace,
                               double start_time = 0.0) const;

  /// \brief Mean runtime over `traces` (the paper averages 10 traces).
  /// See the SimulationResult contract: `runtime`/percentiles aggregate
  /// the completed traces, aborted runs are surfaced via `aborted` (count)
  /// and `aborted_seconds` (mean time burned), and when every trace aborts
  /// the runtime fields report the mean/percentiles of the time the
  /// aborted runs consumed instead of a meaningless 0.
  Result<SimulationResult> RunMany(const ft::SchemePlan& scheme,
                                   std::vector<ClusterTrace>& traces) const;

  /// \brief Pure query runtime without failures and without any extra
  /// materialization (the paper's overhead baseline): the no-failure
  /// makespan of the plan collapsed under the no-mat configuration.
  Result<double> BaselineRuntime(const plan::Plan& plan) const;

  const cost::ClusterStats& stats() const { return stats_; }
  const SimulationOptions& options() const { return options_; }

 private:
  /// Completion time of one collapsed op on one node, starting at `ready`.
  /// `label`/`node_idx` identify the sub-plan and trace lane for the
  /// exported timeline. One call is one retry unit: if the unit fails
  /// options_.max_restarts times, `*aborted` is set and the returned time
  /// is when the query gave up (the last failure's detection + MTTR).
  double RunPartition(double ready, double duration, FailureTrace& node,
                      int* restarts, bool* aborted, const std::string& label,
                      int node_idx) const;

  /// Completion time of one collapsed op on one node under write-ahead
  /// lineage: `duration` must already include the log-write overhead.
  /// Progress is durable the moment it is logged; each attempt first
  /// replays the logged frontier at wal_replay_factor speed, then runs the
  /// remaining fresh work. Same abort semantics as RunPartition.
  double RunWalPartition(double ready, double duration, FailureTrace& node,
                         int* restarts, bool* aborted,
                         const std::string& label, int node_idx) const;

  /// Virtual-time trace emission helpers (no-ops when options_.trace is
  /// null). Durations/timestamps are simulated seconds.
  void TraceSpan(const std::string& name, const std::string& category,
                 double start_s, double dur_s, int node_idx) const;
  void TraceInstant(const std::string& name, const std::string& category,
                    double at_s, int node_idx) const;

  Result<SimulationResult> RunFineGrained(const ft::CollapsedPlan& cp,
                                          const std::vector<std::string>& op_labels,
                                          ClusterTrace& trace,
                                          double start_time) const;
  Result<SimulationResult> RunFullRestart(const ft::CollapsedPlan& cp,
                                          ClusterTrace& trace,
                                          double start_time) const;
  Result<SimulationResult> RunWalReplay(
      const ft::CollapsedPlan& cp,
      const std::vector<std::string>& op_labels, ClusterTrace& trace,
      double start_time) const;

  cost::ClusterStats stats_;
  SimulationOptions options_;
};

/// \brief Overhead in percent of `runtime` over `baseline` (paper §5.2:
/// "if we report that a scheme has 50% overhead, the query took 50% more
/// time than the baseline").
inline double OverheadPercent(double runtime, double baseline) {
  return (runtime / baseline - 1.0) * 100.0;
}

}  // namespace xdbft::cluster
