#include "cluster/workload.h"

#include <algorithm>

namespace xdbft::cluster {

Result<WorkloadOutcome> SimulateWorkload(
    const std::vector<WorkloadQuery>& workload, ft::SchemeKind scheme,
    const cost::ClusterStats& stats, const cost::CostModelParams& model,
    uint64_t trace_seed, const SimulationOptions& options) {
  if (workload.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  XDBFT_RETURN_NOT_OK(stats.Validate());
  XDBFT_RETURN_NOT_OK(model.Validate());

  ft::FtCostContext context;
  context.cluster = stats;
  context.model = model;
  SimulationOptions sim_options = options;
  sim_options.pipe_constant = model.pipe_constant;
  sim_options.wal_write_cost = model.wal_write_cost;
  sim_options.wal_replay_factor = model.wal_replay_factor;
  ClusterSimulator simulator(stats, sim_options);
  ClusterTrace trace = ClusterTrace::Generate(stats, trace_seed);

  WorkloadOutcome out;
  out.scheme = scheme;
  double clock = 0.0;
  double overhead_sum = 0.0;
  int completed = 0;

  for (const auto& q : workload) {
    XDBFT_RETURN_NOT_OK(q.plan.Validate());
    // The scheme is instantiated per query: for the cost-based scheme
    // this re-runs findBestFTPlan (different queries get different
    // configurations); the fixed schemes always produce the same policy.
    XDBFT_ASSIGN_OR_RETURN(ft::SchemePlan sp,
                           ft::ApplyScheme(scheme, q.plan, context));
    XDBFT_ASSIGN_OR_RETURN(const double baseline,
                           simulator.BaselineRuntime(q.plan));
    WorkloadQueryOutcome qo;
    qo.label = q.label;
    qo.baseline_seconds = baseline;
    qo.start_seconds = std::max(clock, q.arrival_seconds);
    XDBFT_ASSIGN_OR_RETURN(
        SimulationResult r,
        simulator.Run(sp, trace, /*start_time=*/qo.start_seconds));
    qo.completed = r.completed;
    qo.runtime_seconds = r.runtime;
    qo.finish_seconds = qo.start_seconds + r.runtime;
    if (r.completed) {
      qo.overhead_percent = OverheadPercent(r.runtime, baseline);
      overhead_sum += qo.overhead_percent;
      ++completed;
    } else {
      ++out.aborted;
    }
    clock = qo.finish_seconds;
    out.makespan_seconds = std::max(out.makespan_seconds,
                                    qo.finish_seconds);
    out.queries.push_back(std::move(qo));
  }
  out.mean_overhead_percent =
      completed > 0 ? overhead_sum / completed : 0.0;
  return out;
}

Result<std::vector<WorkloadOutcome>> CompareSchemesOnWorkload(
    const std::vector<WorkloadQuery>& workload,
    const cost::ClusterStats& stats, const cost::CostModelParams& model,
    uint64_t trace_seed, const SimulationOptions& options) {
  static constexpr ft::SchemeKind kAll[] = {
      ft::SchemeKind::kAllMat, ft::SchemeKind::kNoMatLineage,
      ft::SchemeKind::kNoMatRestart, ft::SchemeKind::kCostBased,
      ft::SchemeKind::kWriteAheadLineage};
  std::vector<WorkloadOutcome> out;
  for (ft::SchemeKind scheme : kAll) {
    XDBFT_ASSIGN_OR_RETURN(
        WorkloadOutcome o,
        SimulateWorkload(workload, scheme, stats, model, trace_seed,
                         options));
    out.push_back(std::move(o));
  }
  return out;
}

plan::Plan MakePipelinedQuery(int depth, double runtime_scale,
                              const std::string& name) {
  plan::PlanBuilder b(name);
  plan::OpId prev = b.Scan("stream", 1e7, 64, 30.0 * runtime_scale);
  for (int i = 0; i < depth; ++i) {
    // Streaming stages: cheap per-stage compute, bulky intermediates —
    // tm > tr, so blocking materialization costs more than the work it
    // protects.
    prev = b.Unary(plan::OpType::kFilter, "stage" + std::to_string(i), prev,
                   10.0 * runtime_scale, 25.0 * runtime_scale);
  }
  b.Unary(plan::OpType::kHashAggregate, "sink", prev, 5.0 * runtime_scale,
          0.5);
  return std::move(b).Build();
}

std::vector<WorkloadQuery> MakePipelinedWorkload(int count, int depth,
                                                 double runtime_scale) {
  std::vector<WorkloadQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    WorkloadQuery q;
    q.label = "pipelined" + std::to_string(i);
    q.plan = MakePipelinedQuery(depth, runtime_scale, q.label);
    q.arrival_seconds = 0.0;
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace xdbft::cluster
