#include "cluster/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"
#include "ft/checkpointing.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xdbft::cluster {

using ft::CollapsedPlan;
using ft::MaterializationConfig;
using ft::RecoveryMode;

std::string SimulationResult::ToString() const {
  if (aborted > 0) {
    return StrFormat(
        "SimulationResult(%s, runtime=%s, restarts=%d, aborted=%d)",
        completed ? "completed" : "ABORTED",
        HumanDuration(runtime).c_str(), restarts, aborted);
  }
  return StrFormat("SimulationResult(%s, runtime=%s, restarts=%d)",
                   completed ? "completed" : "ABORTED",
                   HumanDuration(runtime).c_str(), restarts);
}

namespace {

// Deterministic per-node skew factor in [-1, 1].
double NodeSkew(int node) {
  uint64_t state = 0xabcdef1234567890ULL + static_cast<uint64_t>(node);
  const uint64_t bits = SplitMix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

// Appends one attempt to the timeline (no-op for a null log). Virtual
// simulated seconds go straight into the record's timestamps.
void LogAttempt(obs::AttemptTimeline* log, const std::string& label,
                int node, int attempt, double dispatch, double finish,
                bool killed) {
  if (log == nullptr) return;
  obs::AttemptRecord rec;
  rec.label = label;
  rec.node = node;
  rec.attempt = attempt;
  rec.dispatch_seconds = dispatch;
  rec.finish_seconds = finish;
  rec.killed = killed;
  log->records.push_back(std::move(rec));
}

}  // namespace

// Simulated seconds map to trace microseconds 1:1000 (1 simulated second
// renders as 1 ms), keeping hour-long simulations navigable in the viewer.
constexpr double kTraceUsPerSimSecond = 1000.0;

void ClusterSimulator::TraceSpan(const std::string& name,
                                 const std::string& category, double start_s,
                                 double dur_s, int node_idx) const {
  if (options_.trace == nullptr) return;
  options_.trace->AddComplete(name, category,
                              start_s * kTraceUsPerSimSecond,
                              dur_s * kTraceUsPerSimSecond,
                              options_.trace_pid, node_idx);
}

void ClusterSimulator::TraceInstant(const std::string& name,
                                    const std::string& category, double at_s,
                                    int node_idx) const {
  if (options_.trace == nullptr) return;
  options_.trace->AddInstant(name, category, at_s * kTraceUsPerSimSecond,
                             options_.trace_pid, node_idx);
}

double ClusterSimulator::RunPartition(double ready, double duration,
                                      FailureTrace& node, int* restarts,
                                      bool* aborted, const std::string& label,
                                      int node_idx) const {
  if (duration <= 0.0) return ready;
  double start = ready;
  int unit_restarts = 0;
  while (true) {
    const double fail = node.NextFailureAfter(start);
    if (fail >= start + duration) {
      TraceSpan(label, "subplan", start, duration, node_idx);
      XDBFT_COUNTER_INC("simulator.subplan_runs");
      LogAttempt(options_.attempt_log, label, node_idx, unit_restarts,
                 start, start + duration, /*killed=*/false);
      return start + duration;
    }
    // The node fails mid-execution: all partition work on this sub-plan is
    // lost. The coordinator notices at the next monitoring tick, then
    // redeploys (MTTR) and starts over from the materialized inputs.
    ++(*restarts);
    ++unit_restarts;
    XDBFT_COUNTER_INC("simulator.failures");
    XDBFT_FLIGHT("simulator", "failure", node_idx, unit_restarts);
    TraceSpan(label + " (killed)", "killed", start, fail - start, node_idx);
    TraceInstant("failure", "failure", fail, node_idx);
    LogAttempt(options_.attempt_log, label, node_idx, unit_restarts - 1,
               start, fail, /*killed=*/true);
    double detected = fail;
    if (options_.monitoring_interval > 0.0) {
      const double ticks =
          std::ceil(fail / options_.monitoring_interval);
      detected = ticks * options_.monitoring_interval;
      TraceSpan("detect", "wait", fail, detected - fail, node_idx);
    }
    XDBFT_GAUGE_ADD("simulator.mttr_wait_seconds",
                    (detected - fail) + stats_.mttr_seconds);
    if (unit_restarts >= options_.max_restarts) {
      // This retry unit keeps dying: give up after max_restarts attempts,
      // like RunFullRestart does for whole-query restarts (and like the
      // executor's per-task max_attempts), so fine-grained and full
      // restart are compared under the same abort semantics.
      XDBFT_COUNTER_INC("simulator.aborts");
      XDBFT_FLIGHT("simulator", "abort: max restarts exhausted", node_idx,
                   unit_restarts);
      *aborted = true;
      return detected + stats_.mttr_seconds;
    }
    TraceSpan("mttr", "wait", detected, stats_.mttr_seconds, node_idx);
    start = detected + stats_.mttr_seconds;
  }
}

double ClusterSimulator::RunWalPartition(double ready, double duration,
                                         FailureTrace& node, int* restarts,
                                         bool* aborted,
                                         const std::string& label,
                                         int node_idx) const {
  if (duration <= 0.0) return ready;
  const double replay_factor = options_.wal_replay_factor;
  double logged = 0.0;  // durable logged progress, in work units
  double start = ready;
  int unit_restarts = 0;
  while (true) {
    // One attempt: replay the logged frontier, then run the fresh rest.
    // The span is written as duration - (1 - f)*logged rather than
    // f*logged + (duration - logged): algebraically identical, but at
    // f == 1 the subtrahend is exactly 0.0, keeping the unity-replay
    // span bit-identical to the fine-grained attempt span.
    const double replay = replay_factor * logged;
    const double span = duration - (1.0 - replay_factor) * logged;
    const double fail = node.NextFailureAfter(start);
    if (fail >= start + span) {
      TraceSpan(label, "subplan", start, span, node_idx);
      XDBFT_COUNTER_INC("simulator.subplan_runs");
      LogAttempt(options_.attempt_log, label, node_idx, unit_restarts,
                 start, start + span, /*killed=*/false);
      return start + span;
    }
    // The node fails mid-attempt. Work done past the replay phase was
    // logged *before* its results flowed on, so it survives the failure;
    // work lost inside the replay phase costs nothing extra (the log is
    // still there).
    const double elapsed = fail - start;
    if (elapsed > replay) logged += elapsed - replay;
    ++(*restarts);
    ++unit_restarts;
    XDBFT_COUNTER_INC("simulator.failures");
    XDBFT_FLIGHT("simulator", "failure (wal)", node_idx, unit_restarts);
    TraceSpan(label + " (killed)", "killed", start, elapsed, node_idx);
    TraceInstant("failure", "failure", fail, node_idx);
    LogAttempt(options_.attempt_log, label, node_idx, unit_restarts - 1,
               start, fail, /*killed=*/true);
    double detected = fail;
    if (options_.monitoring_interval > 0.0) {
      const double ticks = std::ceil(fail / options_.monitoring_interval);
      detected = ticks * options_.monitoring_interval;
      TraceSpan("detect", "wait", fail, detected - fail, node_idx);
    }
    XDBFT_GAUGE_ADD("simulator.mttr_wait_seconds",
                    (detected - fail) + stats_.mttr_seconds);
    if (unit_restarts >= options_.max_restarts) {
      XDBFT_COUNTER_INC("simulator.aborts");
      XDBFT_FLIGHT("simulator", "abort: max restarts exhausted", node_idx,
                   unit_restarts);
      *aborted = true;
      return detected + stats_.mttr_seconds;
    }
    TraceSpan("mttr", "wait", detected, stats_.mttr_seconds, node_idx);
    start = detected + stats_.mttr_seconds;
  }
}

Result<SimulationResult> ClusterSimulator::RunWalReplay(
    const CollapsedPlan& cp, const std::vector<std::string>& op_labels,
    ClusterTrace& trace, double start_time) const {
  SimulationResult result;
  bool aborted = false;
  std::vector<double> finish(cp.num_ops(), start_time);
  for (const auto& c : cp.ops()) {  // ascending id = topological
    const std::string& label =
        static_cast<size_t>(c.id) < op_labels.size()
            ? op_labels[static_cast<size_t>(c.id)]
            : StrFormat("c%d", c.id);
    double ready = start_time;
    for (ft::CollapsedId in : c.inputs) {
      ready = std::max(ready, finish[static_cast<size_t>(in)]);
    }
    // The lineage log is written ahead of the pipelined intermediates:
    // the durable duration pays the log-write overhead up front.
    const double durable =
        c.total_cost() + options_.wal_write_cost * c.lineage_volume;
    double done = ready;
    for (int k = 0; k < trace.num_nodes(); ++k) {
      const double duration =
          durable * (1.0 + options_.partition_skew * NodeSkew(k));
      const double completion =
          RunWalPartition(ready, duration, trace.node(k), &result.restarts,
                          &aborted, label, k);
      if (aborted) {
        result.runtime = completion - start_time;
        result.completed = false;
        result.aborted = 1;
        result.aborted_seconds = result.runtime;
        result.failures_hit = result.restarts;
        return result;
      }
      done = std::max(done, completion);
    }
    finish[static_cast<size_t>(c.id)] = done;
  }
  for (ft::CollapsedId sink : cp.sinks()) {
    result.runtime =
        std::max(result.runtime, finish[static_cast<size_t>(sink)]);
  }
  result.runtime -= start_time;
  result.failures_hit = result.restarts;
  result.completed = true;
  return result;
}

Result<SimulationResult> ClusterSimulator::RunFineGrained(
    const CollapsedPlan& cp, const std::vector<std::string>& op_labels,
    ClusterTrace& trace, double start_time) const {
  SimulationResult result;
  bool aborted = false;
  std::vector<double> finish(cp.num_ops(), start_time);
  for (const auto& c : cp.ops()) {  // ascending id = topological
    const std::string& label =
        static_cast<size_t>(c.id) < op_labels.size()
            ? op_labels[static_cast<size_t>(c.id)]
            : StrFormat("c%d", c.id);
    double ready = start_time;
    for (ft::CollapsedId in : c.inputs) {
      ready = std::max(ready, finish[static_cast<size_t>(in)]);
    }
    double done = ready;
    for (int k = 0; k < trace.num_nodes(); ++k) {
      const double duration =
          c.total_cost() * (1.0 + options_.partition_skew * NodeSkew(k));
      const int segments = ft::NumCheckpointSegments(
          duration, options_.checkpoint_interval);
      double completion = ready;
      if (segments == 1) {
        completion = RunPartition(ready, duration, trace.node(k),
                                  &result.restarts, &aborted, label, k);
      } else {
        // Intra-operator checkpointing: each segment is its own retry
        // unit; all but the last also write a state checkpoint.
        const double work = duration / static_cast<double>(segments);
        for (int s = 0; s < segments && !aborted; ++s) {
          const double seg =
              work + (s + 1 < segments ? options_.checkpoint_cost : 0.0);
          completion = RunPartition(
              completion, seg, trace.node(k), &result.restarts, &aborted,
              StrFormat("%s [seg %d/%d]", label.c_str(), s + 1, segments), k);
        }
      }
      if (aborted) {
        // A retry unit hit max_restarts: the query gives up, reporting the
        // cluster time it burned (like RunFullRestart's abort path).
        result.runtime = completion - start_time;
        result.completed = false;
        result.aborted = 1;
        result.aborted_seconds = result.runtime;
        result.failures_hit = result.restarts;
        return result;
      }
      done = std::max(done, completion);
    }
    finish[static_cast<size_t>(c.id)] = done;
  }
  for (ft::CollapsedId sink : cp.sinks()) {
    result.runtime =
        std::max(result.runtime, finish[static_cast<size_t>(sink)]);
  }
  result.runtime -= start_time;
  result.failures_hit = result.restarts;
  result.completed = true;
  return result;
}

Result<SimulationResult> ClusterSimulator::RunFullRestart(
    const CollapsedPlan& cp, ClusterTrace& trace,
    double start_time) const {
  SimulationResult result;
  const double makespan = cp.MakespanNoFailure();
  double start = start_time;
  while (true) {
    const double fail = trace.NextFailureAfter(start);
    if (fail >= start + makespan) {
      TraceSpan("query", "query", start, makespan, /*node_idx=*/0);
      LogAttempt(options_.attempt_log, "query", /*node=*/-1,
                 result.restarts, start, start + makespan,
                 /*killed=*/false);
      result.runtime = start + makespan - start_time;
      result.completed = true;
      return result;
    }
    ++result.restarts;
    ++result.failures_hit;
    XDBFT_COUNTER_INC("simulator.failures");
    XDBFT_FLIGHT("simulator", "failure (full restart)", -1,
                 result.restarts);
    TraceSpan(StrFormat("query (attempt %d, killed)", result.restarts),
              "killed", start, fail - start, /*node_idx=*/0);
    TraceInstant("failure", "failure", fail, /*node_idx=*/0);
    LogAttempt(options_.attempt_log, "query", /*node=*/-1,
               result.restarts - 1, start, fail, /*killed=*/true);
    // The coordinator notices the failure at the next monitoring tick —
    // the same detection delay RunPartition charges, so the full-restart
    // baseline is not biased low against fine-grained recovery.
    double detected = fail;
    if (options_.monitoring_interval > 0.0) {
      const double ticks = std::ceil(fail / options_.monitoring_interval);
      detected = ticks * options_.monitoring_interval;
      TraceSpan("detect", "wait", fail, detected - fail, /*node_idx=*/0);
    }
    XDBFT_GAUGE_ADD("simulator.mttr_wait_seconds",
                    (detected - fail) + stats_.mttr_seconds);
    if (result.restarts >= options_.max_restarts) {
      // Aborted, like the paper after 100 restarts; report the time spent.
      XDBFT_COUNTER_INC("simulator.aborts");
      XDBFT_FLIGHT("simulator", "abort: max restarts exhausted", -1,
                   result.restarts);
      result.runtime = detected + stats_.mttr_seconds - start_time;
      result.completed = false;
      result.aborted = 1;
      result.aborted_seconds = result.runtime;
      return result;
    }
    TraceSpan("mttr", "wait", detected, stats_.mttr_seconds, /*node_idx=*/0);
    start = detected + stats_.mttr_seconds;
  }
}

Result<SimulationResult> ClusterSimulator::Run(
    const plan::Plan& plan, const MaterializationConfig& config,
    RecoveryMode recovery, ClusterTrace& trace, double start_time) const {
  XDBFT_RETURN_NOT_OK(stats_.Validate());
  if (trace.num_nodes() != stats_.num_nodes) {
    return Status::InvalidArgument(
        "trace node count does not match cluster");
  }
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, config, options_.pipe_constant));
  std::vector<std::string> op_labels;
  if (options_.trace != nullptr) {
    // Label collapsed ops by their materializing anchor for the timeline.
    op_labels.reserve(cp.num_ops());
    for (const auto& c : cp.ops()) {
      op_labels.push_back(StrFormat("c%d:%s", c.id,
                                    plan.node(c.anchor).label.c_str()));
    }
  }
  Result<SimulationResult> result =
      recovery == RecoveryMode::kFineGrained
          ? RunFineGrained(cp, op_labels, trace, start_time)
          : recovery == RecoveryMode::kWalReplay
                ? RunWalReplay(cp, op_labels, trace, start_time)
                : RunFullRestart(cp, trace, start_time);
  if (result.ok()) {
    result->runtime_p50 = result->runtime;
    result->runtime_p95 = result->runtime;
    XDBFT_COUNTER_INC("simulator.runs");
    XDBFT_COUNTER_ADD("simulator.restarts", result->restarts);
    XDBFT_GAUGE_SET("simulator.last_runtime_seconds", result->runtime);
  }
  return result;
}

Result<SimulationResult> ClusterSimulator::Run(const ft::SchemePlan& scheme,
                                               ClusterTrace& trace,
                                               double start_time) const {
  return Run(scheme.plan, scheme.config, scheme.recovery, trace,
             start_time);
}

Result<SimulationResult> ClusterSimulator::RunMany(
    const ft::SchemePlan& scheme, std::vector<ClusterTrace>& traces) const {
  if (traces.empty()) {
    return Status::InvalidArgument("no traces given");
  }
  SimulationResult agg;
  agg.completed = true;
  std::vector<double> runtimes;
  std::vector<double> aborted_runtimes;
  runtimes.reserve(traces.size());
  for (auto& trace : traces) {
    XDBFT_ASSIGN_OR_RETURN(SimulationResult r, Run(scheme, trace));
    agg.restarts += r.restarts;
    agg.failures_hit += r.failures_hit;
    if (r.completed) {
      runtimes.push_back(r.runtime);
    } else {
      agg.completed = false;
      ++agg.aborted;
      aborted_runtimes.push_back(r.runtime);
    }
  }
  // Contract (see SimulationResult): runtime stats on a completed-trace
  // basis, aborted traces reported separately as a count plus the mean
  // time they burned. When every trace aborts there is no completed
  // runtime to average; report the time the aborted runs burned before
  // giving up rather than a 0.0 that would make the workload look like an
  // instant success.
  agg.aborted_seconds = Mean(aborted_runtimes);
  const std::vector<double>& basis =
      runtimes.empty() ? aborted_runtimes : runtimes;
  agg.runtime = Mean(basis);
  agg.runtime_p50 = Percentile(basis, 50.0);
  agg.runtime_p95 = Percentile(basis, 95.0);
  return agg;
}

Result<double> ClusterSimulator::BaselineRuntime(
    const plan::Plan& plan) const {
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, MaterializationConfig::NoMat(plan),
                            options_.pipe_constant));
  return cp.MakespanNoFailure();
}

}  // namespace xdbft::cluster
