#include "cluster/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"
#include "ft/checkpointing.h"

namespace xdbft::cluster {

using ft::CollapsedPlan;
using ft::MaterializationConfig;
using ft::RecoveryMode;

std::string SimulationResult::ToString() const {
  return StrFormat("SimulationResult(%s, runtime=%s, restarts=%d)",
                   completed ? "completed" : "ABORTED",
                   HumanDuration(runtime).c_str(), restarts);
}

namespace {

// Deterministic per-node skew factor in [-1, 1].
double NodeSkew(int node) {
  uint64_t state = 0xabcdef1234567890ULL + static_cast<uint64_t>(node);
  const uint64_t bits = SplitMix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

}  // namespace

double ClusterSimulator::RunPartition(double ready, double duration,
                                      FailureTrace& node,
                                      int* restarts) const {
  if (duration <= 0.0) return ready;
  double start = ready;
  while (true) {
    const double fail = node.NextFailureAfter(start);
    if (fail >= start + duration) return start + duration;
    // The node fails mid-execution: all partition work on this sub-plan is
    // lost. The coordinator notices at the next monitoring tick, then
    // redeploys (MTTR) and starts over from the materialized inputs.
    ++(*restarts);
    double detected = fail;
    if (options_.monitoring_interval > 0.0) {
      const double ticks =
          std::ceil(fail / options_.monitoring_interval);
      detected = ticks * options_.monitoring_interval;
    }
    start = detected + stats_.mttr_seconds;
  }
}

Result<SimulationResult> ClusterSimulator::RunFineGrained(
    const CollapsedPlan& cp, ClusterTrace& trace,
    double start_time) const {
  SimulationResult result;
  std::vector<double> finish(cp.num_ops(), start_time);
  for (const auto& c : cp.ops()) {  // ascending id = topological
    double ready = start_time;
    for (ft::CollapsedId in : c.inputs) {
      ready = std::max(ready, finish[static_cast<size_t>(in)]);
    }
    double done = ready;
    for (int k = 0; k < trace.num_nodes(); ++k) {
      const double duration =
          c.total_cost() * (1.0 + options_.partition_skew * NodeSkew(k));
      const int segments = ft::NumCheckpointSegments(
          duration, options_.checkpoint_interval);
      double completion = ready;
      if (segments == 1) {
        completion = RunPartition(ready, duration, trace.node(k),
                                  &result.restarts);
      } else {
        // Intra-operator checkpointing: each segment is its own retry
        // unit; all but the last also write a state checkpoint.
        const double work = duration / static_cast<double>(segments);
        for (int s = 0; s < segments; ++s) {
          const double seg =
              work + (s + 1 < segments ? options_.checkpoint_cost : 0.0);
          completion = RunPartition(completion, seg, trace.node(k),
                                    &result.restarts);
        }
      }
      done = std::max(done, completion);
    }
    finish[static_cast<size_t>(c.id)] = done;
  }
  for (ft::CollapsedId sink : cp.sinks()) {
    result.runtime =
        std::max(result.runtime, finish[static_cast<size_t>(sink)]);
  }
  result.runtime -= start_time;
  result.failures_hit = result.restarts;
  result.completed = true;
  return result;
}

Result<SimulationResult> ClusterSimulator::RunFullRestart(
    const CollapsedPlan& cp, ClusterTrace& trace,
    double start_time) const {
  SimulationResult result;
  const double makespan = cp.MakespanNoFailure();
  double start = start_time;
  while (true) {
    const double fail = trace.NextFailureAfter(start);
    if (fail >= start + makespan) {
      result.runtime = start + makespan - start_time;
      result.completed = true;
      return result;
    }
    ++result.restarts;
    ++result.failures_hit;
    if (result.restarts >= options_.max_restarts) {
      // Aborted, like the paper after 100 restarts; report the time spent.
      result.runtime = fail + stats_.mttr_seconds - start_time;
      result.completed = false;
      return result;
    }
    start = fail + stats_.mttr_seconds;
  }
}

Result<SimulationResult> ClusterSimulator::Run(
    const plan::Plan& plan, const MaterializationConfig& config,
    RecoveryMode recovery, ClusterTrace& trace, double start_time) const {
  XDBFT_RETURN_NOT_OK(stats_.Validate());
  if (trace.num_nodes() != stats_.num_nodes) {
    return Status::InvalidArgument(
        "trace node count does not match cluster");
  }
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, config, options_.pipe_constant));
  Result<SimulationResult> result =
      recovery == RecoveryMode::kFineGrained
          ? RunFineGrained(cp, trace, start_time)
          : RunFullRestart(cp, trace, start_time);
  if (result.ok()) {
    result->runtime_p50 = result->runtime;
    result->runtime_p95 = result->runtime;
  }
  return result;
}

Result<SimulationResult> ClusterSimulator::Run(const ft::SchemePlan& scheme,
                                               ClusterTrace& trace,
                                               double start_time) const {
  return Run(scheme.plan, scheme.config, scheme.recovery, trace,
             start_time);
}

Result<SimulationResult> ClusterSimulator::RunMany(
    const ft::SchemePlan& scheme, std::vector<ClusterTrace>& traces) const {
  if (traces.empty()) {
    return Status::InvalidArgument("no traces given");
  }
  SimulationResult agg;
  agg.completed = true;
  std::vector<double> runtimes;
  runtimes.reserve(traces.size());
  for (auto& trace : traces) {
    XDBFT_ASSIGN_OR_RETURN(SimulationResult r, Run(scheme, trace));
    agg.restarts += r.restarts;
    agg.failures_hit += r.failures_hit;
    if (r.completed) {
      runtimes.push_back(r.runtime);
    } else {
      agg.completed = false;
    }
  }
  agg.runtime = Mean(runtimes);
  agg.runtime_p50 = Percentile(runtimes, 50.0);
  agg.runtime_p95 = Percentile(runtimes, 95.0);
  return agg;
}

Result<double> ClusterSimulator::BaselineRuntime(
    const plan::Plan& plan) const {
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, MaterializationConfig::NoMat(plan),
                            options_.pipe_constant));
  return cp.MakespanNoFailure();
}

}  // namespace xdbft::cluster
