// Experiment harness shared by the paper-reproduction benchmarks: runs all
// four fault-tolerance schemes for a query over a fixed set of failure
// traces and reports overheads relative to the no-failure baseline
// (paper §5.2).
#pragma once

#include <string>
#include <vector>

#include "cluster/simulator.h"
#include "ft/scheme.h"

namespace xdbft::cluster {

/// \brief Per-scheme outcome of one experiment.
struct SchemeOutcome {
  ft::SchemeKind kind = ft::SchemeKind::kCostBased;
  /// False if any trace aborted (the paper prints "Aborted").
  bool completed = false;
  /// Mean runtime over traces, seconds.
  double mean_runtime = 0.0;
  /// Overhead over the baseline, percent.
  double overhead_percent = 0.0;
  /// Cost-model estimate of the runtime under failures.
  double estimated_runtime = 0.0;
  /// Number of materialized operators chosen by the scheme.
  size_t num_materialized = 0;
  int restarts = 0;
};

/// \brief Outcome of running all schemes on one query.
struct ExperimentResult {
  double baseline_runtime = 0.0;
  std::vector<SchemeOutcome> schemes;

  const SchemeOutcome& outcome(ft::SchemeKind kind) const;
};

/// \brief Run the four schemes (§5.2) for `plan` on `stats`, injecting
/// failures from `num_traces` deterministic traces derived from `seed`.
/// The same trace set is reused across schemes, as in the paper.
Result<ExperimentResult> RunSchemeComparison(
    const plan::Plan& plan, const cost::ClusterStats& stats,
    const cost::CostModelParams& model = {}, int num_traces = 10,
    uint64_t seed = 42, const SimulationOptions& sim_options = {});

}  // namespace xdbft::cluster
