// DAG-structured execution plans for the paper's benchmark queries
// (§5.1-5.2): TPC-H Q1 (no join), Q3 (3-way join), Q5 (6-way join, Fig. 9),
// plus the paper's two complex variants Q1C (nested Q1 with an aggregation
// in the middle of the plan) and Q2C (CTE consumed by two outer queries,
// i.e. a genuinely DAG-structured plan).
//
// Plans carry per-operator cardinalities derived from the TPC-H catalog and
// per-operator costs tr(o)/tm(o) derived from the execution rates and
// storage model in TpchPlanConfig. Table scans are bound
// (kNeverMaterialize): base tables are already persistent, so Q1 has no
// free operator — exactly as in the paper, where "Q1 has no free operator
// that can be selected for materialization" — while Q5 has the 5 free join
// operators of Figure 9.
#pragma once

#include <string>
#include <vector>

#include "catalog/tpch_catalog.h"
#include "common/result.h"
#include "cost/storage_model.h"
#include "plan/plan.h"

namespace xdbft::tpch {

enum class TpchQuery : int { kQ1, kQ3, kQ5, kQ1C, kQ2C };

const char* TpchQueryName(TpchQuery q);
std::vector<TpchQuery> AllQueries();

/// \brief Execution-environment parameters used to derive tr(o)/tm(o).
///
/// The default rates are calibrated so that Q5 over SF=100 on 10 nodes has
/// a ~905 s no-failure baseline with total materialization costs ~34% of
/// the runtime costs, matching the paper's measurements (§5.3); Q1C/Q2C
/// then land in the reported 60-100% materialization-cost band.
struct TpchPlanConfig {
  double scale_factor = 1.0;
  int num_nodes = 10;

  /// Per-node processing rates, rows/second (MySQL-backed XDB executors).
  double scan_rows_per_sec = 400e3;
  double probe_rows_per_sec = 80e3;
  double build_rows_per_sec = 300e3;
  double agg_rows_per_sec = 200e3;
  double output_rows_per_sec = 1e6;

  /// Effective aggregate bandwidth of the fault-tolerant store shared by
  /// all nodes (iSCSI over 1 GbE incl. contention and MySQL temp-table
  /// insert overhead), bytes/second.
  double storage_bandwidth_bps = 16.5 * 1024 * 1024;
  double storage_latency_seconds = 0.05;

  /// \brief Selectivity applied to Q5's ORDERS date predicate; the paper's
  /// §5.3 "low selectivity" variant uses a smaller value.
  double q5_order_selectivity = catalog::TpchCatalog::OrderDateYearSelectivity();

  Status Validate() const;

  cost::StorageMedium MakeStorage() const {
    cost::StorageMedium m;
    m.name = "ft-store";
    m.write_bandwidth_bps = storage_bandwidth_bps;
    m.read_bandwidth_bps = storage_bandwidth_bps;
    m.latency_seconds = storage_latency_seconds;
    m.fault_tolerant = true;
    return m;
  }
};

/// \brief Build the execution plan for `query` under `config`.
Result<plan::Plan> BuildQuery(TpchQuery query, const TpchPlanConfig& config);

/// \brief Convenience: scale factor such that Q5's no-failure baseline is
/// approximately `target_seconds` (linear interpolation on SF; used by the
/// varying-runtime experiment, Fig. 10).
Result<double> ScaleFactorForQ5Runtime(double target_seconds,
                                       const TpchPlanConfig& base_config);

}  // namespace xdbft::tpch
