#include "tpch/queries.h"

#include <algorithm>
#include <cmath>

#include "ft/collapsed_plan.h"

namespace xdbft::tpch {

using catalog::TpchCatalog;
using catalog::TpchTable;
using plan::MatConstraint;
using plan::OpId;
using plan::OpType;
using plan::Plan;

const char* TpchQueryName(TpchQuery q) {
  switch (q) {
    case TpchQuery::kQ1:
      return "Q1";
    case TpchQuery::kQ3:
      return "Q3";
    case TpchQuery::kQ5:
      return "Q5";
    case TpchQuery::kQ1C:
      return "Q1C";
    case TpchQuery::kQ2C:
      return "Q2C";
  }
  return "?";
}

std::vector<TpchQuery> AllQueries() {
  return {TpchQuery::kQ1, TpchQuery::kQ3, TpchQuery::kQ5, TpchQuery::kQ1C,
          TpchQuery::kQ2C};
}

Status TpchPlanConfig::Validate() const {
  if (!(scale_factor > 0.0)) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  if (num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  for (double r : {scan_rows_per_sec, probe_rows_per_sec,
                   build_rows_per_sec, agg_rows_per_sec,
                   output_rows_per_sec, storage_bandwidth_bps}) {
    if (!(r > 0.0)) {
      return Status::InvalidArgument("rates must be positive");
    }
  }
  if (!(q5_order_selectivity > 0.0) || q5_order_selectivity > 1.0) {
    return Status::InvalidArgument("q5_order_selectivity must be in (0,1]");
  }
  return Status::OK();
}

namespace {

// Assembles a TPC-H plan: computes tr(o) from per-node rates and tm(o)
// from the storage model, and marks scans as bound (base tables are
// persistent; re-scanning is the recovery path).
class QueryAssembler {
 public:
  QueryAssembler(std::string name, const TpchPlanConfig& cfg)
      : cfg_(cfg),
        cat_(cfg.scale_factor),
        builder_(std::move(name)),
        storage_(cfg.MakeStorage()) {}

  double nodes() const { return static_cast<double>(cfg_.num_nodes); }

  double Rows(TpchTable t) const { return cat_.Rows(t); }

  // Cost of materializing `rows` x `width` to the shared store
  // (aggregate bandwidth; see OperatorCostEstimator::MaterializeCost).
  double Mat(double rows, double width) const {
    return storage_.WriteSeconds(rows, width);
  }

  OpId Scan(TpchTable t, double selectivity = 1.0) {
    const double base_rows = cat_.Rows(t);
    const double out_rows = base_rows * selectivity;
    // The scan reads the full partition regardless of predicate
    // selectivity.
    const double tr = base_rows / nodes() / cfg_.scan_rows_per_sec;
    plan::PlanNode n;
    n.type = OpType::kTableScan;
    n.label = selectivity < 1.0
                  ? std::string("Scan(s:") + catalog::TpchTableName(t) + ")"
                  : std::string("Scan(") + catalog::TpchTableName(t) + ")";
    n.runtime_cost = tr;
    n.materialize_cost = Mat(out_rows, cat_.info(t).row_width_bytes);
    n.output_rows = out_rows;
    n.row_width_bytes = cat_.info(t).row_width_bytes;
    n.constraint = MatConstraint::kNeverMaterialize;
    return builder_.plan().AddNode(std::move(n));
  }

  /// Scale factors for "measured" operator profiles (reference point:
  /// SF = 100 on 10 nodes with the default storage bandwidth). Runtime
  /// scales linearly with SF and inversely with the node count;
  /// materialization scales linearly with SF and inversely with the
  /// shared storage bandwidth.
  double RuntimeScale() const {
    return cfg_.scale_factor / 100.0 * 10.0 / nodes();
  }
  double MatScale() const {
    return cfg_.scale_factor / 100.0 * (16.5 * 1024 * 1024) /
           cfg_.storage_bandwidth_bps;
  }

  /// Adds an operator with measured statistics: tr_ref/tm_ref are the
  /// paper-testbed-calibrated costs at the reference point (seconds).
  OpId Measured(OpType type, const std::string& label,
                std::vector<OpId> inputs, double tr_ref, double tm_ref,
                double out_rows, double out_width,
                bool scale_runtime = true, bool scale_mat = true) {
    const double tr =
        tr_ref * (scale_runtime ? RuntimeScale() : 10.0 / nodes());
    const double tm = tm_ref * (scale_mat ? MatScale() : 1.0);
    plan::PlanNode n;
    n.type = type;
    n.label = label;
    n.inputs = std::move(inputs);
    n.runtime_cost = tr;
    n.materialize_cost = tm;
    n.output_rows = out_rows;
    n.row_width_bytes = out_width;
    if (type == OpType::kTableScan) {
      n.constraint = MatConstraint::kNeverMaterialize;
    }
    return builder_.plan().AddNode(std::move(n));
  }

  OpId Join(const std::string& label, OpId left, OpId right, double out_rows,
            double out_width) {
    const auto& l = builder_.plan().node(left);
    const auto& r = builder_.plan().node(right);
    const double build_rows = std::min(l.output_rows, r.output_rows);
    const double probe_rows = std::max(l.output_rows, r.output_rows);
    const double tr = build_rows / nodes() / cfg_.build_rows_per_sec +
                      probe_rows / nodes() / cfg_.probe_rows_per_sec +
                      out_rows / nodes() / cfg_.output_rows_per_sec;
    return builder_.Binary(OpType::kHashJoin, label, left, right, tr,
                           Mat(out_rows, out_width), out_rows, out_width);
  }

  OpId Aggregate(const std::string& label, OpId input, double out_rows,
                 double out_width) {
    const double in_rows = builder_.plan().node(input).output_rows;
    const double tr = in_rows / nodes() / cfg_.agg_rows_per_sec;
    return builder_.Unary(OpType::kHashAggregate, label, input, tr,
                          Mat(out_rows, out_width), out_rows, out_width);
  }

  OpId Sort(const std::string& label, OpId input, double out_rows,
            double out_width) {
    const double in_rows = builder_.plan().node(input).output_rows;
    const double tr = in_rows / nodes() / cfg_.agg_rows_per_sec;
    return builder_.Unary(OpType::kSort, label, input, tr,
                          Mat(out_rows, out_width), out_rows, out_width);
  }

  Plan Finish() && { return std::move(builder_).Build(); }

 private:
  const TpchPlanConfig& cfg_;
  TpchCatalog cat_;
  plan::PlanBuilder builder_;
  cost::StorageMedium storage_;
};

// Q1: full LINEITEM scan with a 98%-selective shipdate predicate feeding a
// grand aggregation. No joins and no free operator (the scan is bound and
// the aggregation is the sink).
Plan BuildQ1(const TpchPlanConfig& cfg) {
  QueryAssembler a("Q1", cfg);
  const double sel = TpchCatalog::LineitemShipdateQ1Selectivity();
  const OpId scan = a.Scan(TpchTable::kLineitem, sel);
  a.Aggregate("Agg(returnflag,linestatus)", scan, 4, 144);
  return std::move(a).Finish();
}

// Q3: CUSTOMER x ORDERS x LINEITEM (3-way join), aggregation, top-k sort.
//
// Operator statistics are *measured profiles* (like the paper's perfect
// cost estimates, §5.1): per-operator tr/tm calibrated at the reference
// point SF=100 / 10 nodes so that the baseline (~570 s), the total
// materialization share (~22%, "moderate" per §5.2) and the re-execution
// granularity match the paper's testbed measurements.
Plan BuildQ3(const TpchPlanConfig& cfg) {
  QueryAssembler a("Q3", cfg);
  const OpId c = a.Measured(OpType::kTableScan, "Scan(s:CUSTOMER)", {},
                            2.0, 0.0,
                            a.Rows(TpchTable::kCustomer) *
                                TpchCatalog::Q3SegmentSelectivity(),
                            180);
  const OpId o = a.Measured(OpType::kTableScan, "Scan(s:ORDERS)", {}, 5.0,
                            0.0,
                            a.Rows(TpchTable::kOrders) *
                                TpchCatalog::Q3DateSelectivity(),
                            128);
  const OpId l = a.Measured(OpType::kTableScan, "Scan(s:LINEITEM)", {},
                            8.0, 0.0, a.Rows(TpchTable::kLineitem) * 0.54,
                            120);
  // sigma(C) join sigma(O) on custkey keeps the filtered orders of the 20%
  // customer segment; Q3 projects few columns, so intermediates are narrow.
  const double j1_rows = a.Rows(TpchTable::kOrders) *
                         TpchCatalog::Q3DateSelectivity() *
                         TpchCatalog::Q3SegmentSelectivity();
  const OpId j1 = a.Measured(OpType::kHashJoin, "Join(C,O)", {c, o}, 170.0,
                             40.0, j1_rows, 40);
  const double j2_rows = j1_rows * 4.0 * 0.54;
  const OpId j2 = a.Measured(OpType::kHashJoin, "Join(CO,L)", {j1, l},
                             180.0, 60.0, j2_rows, 48);
  const double groups = j2_rows * 0.45;  // distinct orderkeys
  const OpId agg = a.Measured(OpType::kHashAggregate, "Agg(orderkey)",
                              {j2}, 200.0, 25.0, groups, 48);
  a.Measured(OpType::kSort, "TopK(revenue)", {agg}, 12.0, 0.1,
             std::min(10.0, groups), 48);
  return std::move(a).Finish();
}

// Q5 (paper Fig. 9): sigma(R) |x| N |x| C |x| sigma(O) |x| L |x| S -> Agg.
// The 5 join operators are the free operators 1-5 of the figure.
//
// Operator statistics are *measured profiles* at the reference point
// SF=100 / 10 nodes (the paper's perfect cost estimates, §5.1): baseline
// ~905 s (paper: 905.33 s), total materialization ~34% of the runtime
// costs (paper: 34.13%), and runtime spread over the join chain as on the
// MySQL-backed testbed (co-partitioned L join, RREF lookups), so that no
// single operator dominates re-execution.
Plan BuildQ5(const TpchPlanConfig& cfg) {
  QueryAssembler a("Q5", cfg);
  // Ratio of the configured ORDERS selectivity to the reference 1/7:
  // scales every operator downstream of sigma(O).
  const double sel_ratio = cfg.q5_order_selectivity /
                           TpchCatalog::OrderDateYearSelectivity();

  const OpId r = a.Measured(OpType::kTableScan, "Scan(s:REGION)", {}, 0.01,
                            0.0, 1, 120, /*scale_runtime=*/false);
  const OpId n = a.Measured(OpType::kTableScan, "Scan(NATION)", {}, 0.01,
                            0.0, 25, 128, /*scale_runtime=*/false);
  const OpId c = a.Measured(OpType::kTableScan, "Scan(CUSTOMER)", {}, 2.0,
                            0.0, a.Rows(TpchTable::kCustomer), 180);
  const OpId o = a.Measured(OpType::kTableScan, "Scan(s:ORDERS)", {}, 5.0,
                            0.0,
                            a.Rows(TpchTable::kOrders) *
                                cfg.q5_order_selectivity,
                            128);
  const OpId l = a.Measured(OpType::kTableScan, "Scan(LINEITEM)", {}, 8.0,
                            0.0, a.Rows(TpchTable::kLineitem), 120);
  const OpId s = a.Measured(OpType::kTableScan, "Scan(SUPPLIER)", {}, 1.0,
                            0.0, a.Rows(TpchTable::kSupplier), 160);

  const double nations_in_region = 5.0;
  const OpId j1 = a.Measured(OpType::kHashJoin, "Join1(R,N)", {r, n}, 0.1,
                             0.01, nations_in_region, 140,
                             /*scale_runtime=*/false, /*scale_mat=*/false);
  // Customers of the region's 5 (of 25) nations.
  const double j2_rows = a.Rows(TpchTable::kCustomer) / 5.0;
  const OpId j2 = a.Measured(OpType::kHashJoin, "Join2(RN,C)", {j1, c},
                             110.0, 60.0, j2_rows, 200);
  // Orders in the date range whose customer is in the region.
  const double j3_rows =
      a.Rows(TpchTable::kOrders) * cfg.q5_order_selectivity / 5.0;
  const OpId j3 = a.Measured(OpType::kHashJoin, "Join3(RNC,O)", {j2, o},
                             240.0 * sel_ratio, 110.0 * sel_ratio, j3_rows,
                             220);
  // ~4 lineitems per order (co-partitioned on orderkey: local join).
  const double j4_rows = j3_rows * 4.0;
  const OpId j4 = a.Measured(OpType::kHashJoin, "Join4(RNCO,L)", {j3, l},
                             240.0 * sel_ratio, 75.0 * sel_ratio, j4_rows,
                             260);
  // Supplier must be in the customer's nation: 1/25 survive.
  const double j5_rows = j4_rows / 25.0;
  const OpId j5 = a.Measured(OpType::kHashJoin, "Join5(RNCOL,S)", {j4, s},
                             215.0 * sel_ratio, 60.0 * sel_ratio, j5_rows,
                             280);
  a.Measured(OpType::kHashAggregate, "Agg(nation)", {j5}, 95.0 * sel_ratio,
             0.3, nations_in_region, 112, /*scale_runtime=*/true,
             /*scale_mat=*/false);
  return std::move(a).Finish();
}

// Q1C: nested Q1 — the inner aggregation computes the average price, the
// outer query re-joins LINEITEM against it and counts the items above the
// average. The inner aggregation sits in the middle of the plan and has
// tiny materialization costs: the natural checkpoint (§5.2).
Plan BuildQ1C(const TpchPlanConfig& cfg) {
  QueryAssembler a("Q1C", cfg);
  const OpId inner_scan = a.Scan(TpchTable::kLineitem,
                                 TpchCatalog::LineitemShipdateQ1Selectivity());
  const OpId inner_agg =
      a.Aggregate("InnerAgg(avg_price)", inner_scan, 4, 48);
  const OpId outer_scan = a.Scan(TpchTable::kLineitem,
                                 TpchCatalog::LineitemShipdateQ1Selectivity());
  // Theta-join against the tiny average: ~17% of items exceed the average
  // price of their status group (wide output rows keep all item columns).
  const double j_rows = a.Rows(TpchTable::kLineitem) * 0.17;
  const OpId j = a.Join("Join(L,avg)", inner_agg, outer_scan, j_rows, 160);
  a.Aggregate("Agg(count_by_status)", j, 4, 96);
  return std::move(a).Finish();
}

// Q2C: the paper's DAG-structured variant of Q2 — the inner 4-way-join
// aggregation (min supplycost per part) is a CTE consumed by two outer
// queries with different PART filters.
Plan BuildQ2C(const TpchPlanConfig& cfg) {
  QueryAssembler a("Q2C", cfg);
  const double type_sel = TpchCatalog::Q2PartTypeSelectivity();
  const OpId p = a.Scan(TpchTable::kPart, type_sel);
  const OpId ps = a.Scan(TpchTable::kPartSupp);
  const OpId s = a.Scan(TpchTable::kSupplier);
  const OpId n = a.Scan(TpchTable::kNation);

  // Inner CTE: sigma(P) |x| PS |x| S |x| N -> Agg(min supplycost).
  const double j1_rows = a.Rows(TpchTable::kPartSupp) * type_sel;
  const OpId j1 = a.Join("InnerJoin1(P,PS)", p, ps, j1_rows, 400);
  const OpId j2 = a.Join("InnerJoin2(PPS,S)", j1, s, j1_rows, 420);
  const OpId j3 = a.Join("InnerJoin3(PPSS,N)", j2, n, j1_rows, 430);
  const double cte_rows = a.Rows(TpchTable::kPart) * type_sel;
  const OpId cte = a.Aggregate("CTE(min_supplycost)", j3, cte_rows, 32);

  // Two outer queries with different PART filters, each re-joining the CTE
  // with PART and PARTSUPP.
  for (int i = 1; i <= 2; ++i) {
    const std::string tag = std::to_string(i);
    const OpId pi = a.Scan(TpchTable::kPart, type_sel * 0.5);
    const double oa_rows = cte_rows * 0.5;
    const OpId oa =
        a.Join("Outer" + tag + "Join(CTE,P)", cte, pi, oa_rows, 200);
    const OpId psi = a.Scan(TpchTable::kPartSupp);
    const double ob_rows = oa_rows * 4.0 * 0.25;  // min-cost supplier match
    const OpId ob =
        a.Join("Outer" + tag + "Join(.,PS)", oa, psi, ob_rows, 240);
    a.Sort("Outer" + tag + "TopK", ob, std::min(100.0, ob_rows), 240);
  }
  return std::move(a).Finish();
}

}  // namespace

Result<Plan> BuildQuery(TpchQuery query, const TpchPlanConfig& config) {
  XDBFT_RETURN_NOT_OK(config.Validate());
  Plan p;
  switch (query) {
    case TpchQuery::kQ1:
      p = BuildQ1(config);
      break;
    case TpchQuery::kQ3:
      p = BuildQ3(config);
      break;
    case TpchQuery::kQ5:
      p = BuildQ5(config);
      break;
    case TpchQuery::kQ1C:
      p = BuildQ1C(config);
      break;
    case TpchQuery::kQ2C:
      p = BuildQ2C(config);
      break;
  }
  XDBFT_RETURN_NOT_OK(p.Validate());
  return p;
}

namespace {

Result<double> Q5Baseline(const TpchPlanConfig& cfg) {
  XDBFT_ASSIGN_OR_RETURN(Plan p, BuildQuery(TpchQuery::kQ5, cfg));
  XDBFT_ASSIGN_OR_RETURN(
      ft::CollapsedPlan cp,
      ft::CollapsedPlan::Create(p, ft::MaterializationConfig::NoMat(p)));
  return cp.MakespanNoFailure();
}

}  // namespace

Result<double> ScaleFactorForQ5Runtime(double target_seconds,
                                       const TpchPlanConfig& base_config) {
  if (!(target_seconds > 0.0)) {
    return Status::InvalidArgument("target_seconds must be positive");
  }
  // Runtime is monotone in SF; bisect on a log scale.
  double lo = 1e-3, hi = 1e5;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = std::sqrt(lo * hi);
    TpchPlanConfig cfg = base_config;
    cfg.scale_factor = mid;
    XDBFT_ASSIGN_OR_RETURN(const double runtime, Q5Baseline(cfg));
    if (runtime < target_seconds) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

}  // namespace xdbft::tpch
