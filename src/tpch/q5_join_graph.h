// Join graph of TPC-H Q5 for join-order enumeration (paper §5.5: "we
// enumerate all 1344 equivalent join orders of TPC-H query 5, i.e. we do
// not enumerate plans with cartesian products").
//
// The graph is the 5-cycle NATION-CUSTOMER-ORDERS-LINEITEM-SUPPLIER-NATION
// (the supplier-in-customer-nation predicate closes the cycle) with REGION
// pendant on NATION. Edge selectivities are chosen so that subset
// cardinalities under the independence assumption reproduce the chain
// cardinalities of BuildQuery(kQ5, ...).
#pragma once

#include "optimizer/join_enumerator.h"
#include "optimizer/join_graph.h"
#include "datagen/tpch_gen.h"
#include "tpch/queries.h"

namespace xdbft::tpch {

/// \brief Build Q5's join graph under `config` (analytic cardinalities
/// from the catalog's scaling formulas).
Result<optimizer::JoinGraph> MakeQ5JoinGraph(const TpchPlanConfig& config);

/// \brief Build Q5's join graph from *real data*: tables are analyzed
/// (histograms + NDVs, optimizer/statistics.h), predicate selectivities
/// estimated from histograms and edge selectivities from the containment
/// assumption — the full statistics-driven optimizer path. `config`
/// supplies the execution rates; its scale factor is ignored (the data
/// determines cardinalities).
Result<optimizer::JoinGraph> MakeQ5JoinGraphFromData(
    const datagen::TpchDatabase& db, const TpchPlanConfig& config);

/// \brief The PhysicalCostParams matching `config`'s rates.
optimizer::PhysicalCostParams MakePhysicalCostParams(
    const TpchPlanConfig& config);

}  // namespace xdbft::tpch
