#include "tpch/q5_join_graph.h"

#include "catalog/tpch_catalog.h"
#include "optimizer/statistics.h"

namespace xdbft::tpch {

using catalog::TpchCatalog;
using catalog::TpchTable;
using optimizer::JoinGraph;
using optimizer::Relation;

optimizer::PhysicalCostParams MakePhysicalCostParams(
    const TpchPlanConfig& config) {
  optimizer::PhysicalCostParams p;
  p.num_nodes = config.num_nodes;
  p.scan_rows_per_sec = config.scan_rows_per_sec;
  p.probe_rows_per_sec = config.probe_rows_per_sec;
  p.build_rows_per_sec = config.build_rows_per_sec;
  p.agg_rows_per_sec = config.agg_rows_per_sec;
  p.output_rows_per_sec = config.output_rows_per_sec;
  p.storage_bandwidth_bps = config.storage_bandwidth_bps;
  p.storage_latency_seconds = config.storage_latency_seconds;
  return p;
}

Result<JoinGraph> MakeQ5JoinGraph(const TpchPlanConfig& config) {
  XDBFT_RETURN_NOT_OK(config.Validate());
  TpchCatalog cat(config.scale_factor);
  const double nodes = static_cast<double>(config.num_nodes);

  auto scan_cost = [&](TpchTable t) {
    return cat.Rows(t) / nodes / config.scan_rows_per_sec;
  };
  auto scan_width = [&](TpchTable t) {
    return cat.info(t).row_width_bytes;
  };

  JoinGraph g;
  // Filtered base relations; width_contribution values reproduce the
  // intermediate widths of BuildQuery(kQ5, ...) along the Fig. 9 chain.
  const int r = g.AddRelation(
      {"REGION", cat.Rows(TpchTable::kRegion) * TpchCatalog::RegionSelectivity(),
       scan_cost(TpchTable::kRegion), 60, scan_width(TpchTable::kRegion)});
  const int n = g.AddRelation({"NATION", cat.Rows(TpchTable::kNation),
                               scan_cost(TpchTable::kNation), 80,
                               scan_width(TpchTable::kNation)});
  const int c = g.AddRelation({"CUSTOMER", cat.Rows(TpchTable::kCustomer),
                               scan_cost(TpchTable::kCustomer), 60,
                               scan_width(TpchTable::kCustomer)});
  const int o = g.AddRelation(
      {"ORDERS", cat.Rows(TpchTable::kOrders) * config.q5_order_selectivity,
       scan_cost(TpchTable::kOrders), 20, scan_width(TpchTable::kOrders)});
  const int l = g.AddRelation({"LINEITEM", cat.Rows(TpchTable::kLineitem),
                               scan_cost(TpchTable::kLineitem), 40,
                               scan_width(TpchTable::kLineitem)});
  const int s = g.AddRelation({"SUPPLIER", cat.Rows(TpchTable::kSupplier),
                               scan_cost(TpchTable::kSupplier), 20,
                               scan_width(TpchTable::kSupplier)});

  // regionkey: the filtered region keeps 5 of 25 nations.
  XDBFT_RETURN_NOT_OK(g.AddEdge(r, n, 1.0 / 5.0, "n_regionkey=r_regionkey"));
  XDBFT_RETURN_NOT_OK(g.AddEdge(n, c, 1.0 / 25.0,
                                "c_nationkey=n_nationkey"));
  XDBFT_RETURN_NOT_OK(g.AddEdge(c, o, 1.0 / cat.Rows(TpchTable::kCustomer),
                                "o_custkey=c_custkey"));
  XDBFT_RETURN_NOT_OK(g.AddEdge(o, l, 1.0 / cat.Rows(TpchTable::kOrders),
                                "l_orderkey=o_orderkey"));
  // The supplier-in-customer-nation predicate (s_nationkey = c_nationkey)
  // is folded into the LINEITEM-SUPPLIER edge as an extra 1/25 rather than
  // modeled as a NATION-SUPPLIER graph edge: the paper enumerates exactly
  // the 1344 join orders of the *chain* R-N-C-O-L-S (Catalan(5) * 2^5),
  // treating that predicate as a post-join filter.
  XDBFT_RETURN_NOT_OK(
      g.AddEdge(l, s, 1.0 / cat.Rows(TpchTable::kSupplier) / 25.0,
                "l_suppkey=s_suppkey AND s_nationkey=c_nationkey"));
  XDBFT_RETURN_NOT_OK(g.Validate());
  return g;
}

Result<JoinGraph> MakeQ5JoinGraphFromData(const datagen::TpchDatabase& db,
                                          const TpchPlanConfig& config) {
  XDBFT_RETURN_NOT_OK(config.Validate());
  const double nodes = static_cast<double>(config.num_nodes);

  // Analyze the base tables the query touches.
  XDBFT_ASSIGN_OR_RETURN(const optimizer::TableStats region_stats,
                         optimizer::AnalyzeTable(db.region));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::TableStats nation_stats,
                         optimizer::AnalyzeTable(db.nation));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::TableStats customer_stats,
                         optimizer::AnalyzeTable(db.customer));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::TableStats orders_stats,
                         optimizer::AnalyzeTable(db.orders));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::TableStats lineitem_stats,
                         optimizer::AnalyzeTable(db.lineitem));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::TableStats supplier_stats,
                         optimizer::AnalyzeTable(db.supplier));

  auto scan_cost = [&](const optimizer::TableStats& t) {
    return static_cast<double>(t.row_count) / nodes /
           config.scan_rows_per_sec;
  };
  // Predicate selectivities from the analyzed statistics.
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* rkey,
                         region_stats.Find("r_regionkey"));
  const double region_sel =
      optimizer::EstimateEquals(*rkey, 3.0 /* one region */);
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* odate,
                         orders_stats.Find("o_orderdate"));
  const double orders_sel = optimizer::EstimateRange(
      *odate, 3.0 * 365.0, 4.0 * 365.0);  // one year of the window

  // Join-edge selectivities: containment assumption via key NDVs.
  auto edge_sel = [](const optimizer::ColumnStats& a,
                     const optimizer::ColumnStats& b) {
    return 1.0 / static_cast<double>(std::max<size_t>(
                     1, std::max(a.distinct_count, b.distinct_count)));
  };
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* n_rkey,
                         nation_stats.Find("n_regionkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* n_key,
                         nation_stats.Find("n_nationkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* c_nkey,
                         customer_stats.Find("c_nationkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* c_key,
                         customer_stats.Find("c_custkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* o_ckey,
                         orders_stats.Find("o_custkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* o_key,
                         orders_stats.Find("o_orderkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* l_okey,
                         lineitem_stats.Find("l_orderkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* l_skey,
                         lineitem_stats.Find("l_suppkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* s_key,
                         supplier_stats.Find("s_suppkey"));
  XDBFT_ASSIGN_OR_RETURN(const optimizer::ColumnStats* s_nkey,
                         supplier_stats.Find("s_nationkey"));

  JoinGraph g;
  const int r = g.AddRelation(
      {"REGION", std::max(1.0, region_sel *
                                   static_cast<double>(
                                       region_stats.row_count)),
       scan_cost(region_stats), 60, 120});
  const int n = g.AddRelation(
      {"NATION", static_cast<double>(nation_stats.row_count),
       scan_cost(nation_stats), 80, 128});
  const int c = g.AddRelation(
      {"CUSTOMER", static_cast<double>(customer_stats.row_count),
       scan_cost(customer_stats), 60, 180});
  const int o = g.AddRelation(
      {"ORDERS",
       orders_sel * static_cast<double>(orders_stats.row_count),
       scan_cost(orders_stats), 20, 128});
  const int l = g.AddRelation(
      {"LINEITEM", static_cast<double>(lineitem_stats.row_count),
       scan_cost(lineitem_stats), 40, 120});
  const int s = g.AddRelation(
      {"SUPPLIER", static_cast<double>(supplier_stats.row_count),
       scan_cost(supplier_stats), 20, 160});

  XDBFT_RETURN_NOT_OK(
      g.AddEdge(r, n, edge_sel(*rkey, *n_rkey), "n_regionkey=r_regionkey"));
  XDBFT_RETURN_NOT_OK(
      g.AddEdge(n, c, edge_sel(*n_key, *c_nkey), "c_nationkey=n_nationkey"));
  XDBFT_RETURN_NOT_OK(
      g.AddEdge(c, o, edge_sel(*c_key, *o_ckey), "o_custkey=c_custkey"));
  XDBFT_RETURN_NOT_OK(
      g.AddEdge(o, l, edge_sel(*o_key, *l_okey), "l_orderkey=o_orderkey"));
  // As in the analytic graph, the supplier-nation predicate folds into
  // the L-S edge (1/|nations|), keeping the chain's 1344 join orders.
  const double supplier_nation_sel =
      1.0 / static_cast<double>(std::max<size_t>(1, s_nkey->distinct_count));
  XDBFT_RETURN_NOT_OK(g.AddEdge(
      l, s, edge_sel(*l_skey, *s_key) * supplier_nation_sel,
      "l_suppkey=s_suppkey AND s_nationkey=c_nationkey"));
  XDBFT_RETURN_NOT_OK(g.Validate());
  return g;
}

}  // namespace xdbft::tpch
