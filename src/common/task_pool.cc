#include "common/task_pool.h"

#include <chrono>
#include <exception>
#include <utility>

namespace xdbft {

namespace {

// Which pool (if any) owns the current thread, and its worker index there.
struct WorkerTls {
  const TaskPool* pool = nullptr;
  int id = -1;
};
thread_local WorkerTls g_worker_tls;

}  // namespace

TaskPool::TaskPool(int num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (num_threads < 0) num_threads = 0;
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers only exit once pending_ hits zero, so every accepted task ran.
}

int TaskPool::CurrentWorkerId() const {
  return g_worker_tls.pool == this ? g_worker_tls.id : -1;
}

bool TaskPool::EnqueueTask(Task& task) {
  // Prefer the submitting worker's own queue (LIFO locality); external
  // threads round-robin. On a full target, probe the others once —
  // bounded memory, never blocks.
  const size_t n = queues_.size();
  if (n == 0) return false;
  const int self = CurrentWorkerId();
  const size_t start =
      self >= 0 ? static_cast<size_t>(self)
                : next_queue_.fetch_add(1, std::memory_order_relaxed) % n;
  for (size_t probe = 0; probe < n; ++probe) {
    WorkerQueue& q = *queues_[(start + probe) % n];
    {
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.tasks.size() >= queue_capacity_) continue;
      q.tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
    }
    cv_.notify_one();
    return true;
  }
  return false;
}

void TaskPool::Submit(Task task) {
  if (EnqueueTask(task)) return;
  // No workers or every queue full: caller-runs backpressure.
  tasks_inline_.fetch_add(1, std::memory_order_relaxed);
  task();
}

bool TaskPool::TrySubmit(Task task) { return EnqueueTask(task); }

bool TaskPool::PopTask(int worker_id, Task* task, bool* stolen) {
  const size_t n = queues_.size();
  if (n == 0) return false;
  *stolen = false;
  if (worker_id >= 0) {
    WorkerQueue& own = *queues_[static_cast<size_t>(worker_id)];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  const size_t start =
      worker_id >= 0 ? static_cast<size_t>(worker_id) + 1 : 0;
  for (size_t probe = 0; probe < n; ++probe) {
    WorkerQueue& victim = *queues_[(start + probe) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    *stolen = worker_id >= 0;
    return true;
  }
  return false;
}

bool TaskPool::RunOneTaskInline() {
  Task task;
  bool stolen = false;
  if (!PopTask(/*worker_id=*/-1, &task, &stolen)) return false;
  tasks_inline_.fetch_add(1, std::memory_order_relaxed);
  task();
  return true;
}

void TaskPool::WorkerLoop(int worker_id) {
  g_worker_tls = WorkerTls{this, worker_id};
  for (;;) {
    Task task;
    bool stolen = false;
    if (PopTask(worker_id, &task, &stolen)) {
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      if (stolen) tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return stopping_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_ && pending_.load(std::memory_order_acquire) == 0) break;
  }
  g_worker_tls = WorkerTls{};
}

void TaskPool::ParallelForEach(size_t n,
                               const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
    std::exception_ptr first_exception;
  };
  auto group = std::make_shared<Group>();
  group->remaining = n;
  for (size_t i = 0; i < n; ++i) {
    Submit([group, &fn, i] {
      std::exception_ptr eptr;
      try {
        fn(i);
      } catch (...) {
        eptr = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(group->mu);
      if (eptr && !group->first_exception) group->first_exception = eptr;
      if (--group->remaining == 0) group->cv.notify_all();
    });
  }
  // Help drain the queues while waiting: with more chunks than workers the
  // caller is one more execution lane, and with zero workers this is the
  // (already satisfied) sequential path.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(group->mu);
      if (group->remaining == 0) break;
    }
    if (RunOneTaskInline()) continue;
    std::unique_lock<std::mutex> lock(group->mu);
    group->cv.wait_for(lock, std::chrono::milliseconds(1),
                       [&] { return group->remaining == 0; });
    if (group->remaining == 0) break;
  }
  if (group->first_exception) std::rethrow_exception(group->first_exception);
}

TaskPoolStats TaskPool::stats() const {
  TaskPoolStats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.tasks_inline = tasks_inline_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace xdbft
