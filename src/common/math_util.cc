#include "common/math_util.h"

#include <numeric>

namespace xdbft {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = Clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> Ranks(const std::vector<double>& xs) {
  std::vector<size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size());
  size_t i = 0;
  while (i < idx.size()) {
    size_t j = i;
    while (j + 1 < idx.size() && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Ties get the average of their rank range.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(xs), Ranks(ys));
}

double HarmonicNumber(uint64_t n) {
  // Below the cutoff the direct sum is both exact and cheap. Above it, the
  // Euler-Maclaurin expansion H_n = ln n + gamma + 1/2n - 1/12n^2 + 1/120n^4
  // has a truncation error of -1/(252 n^6) — below one ulp of H_n for every
  // n past the cutoff — and runs in O(1) instead of O(n).
  constexpr uint64_t kExactCutoff = 256;
  if (n < kExactCutoff) {
    double h = 0.0;
    for (uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  constexpr double kEulerGamma = 0.5772156649015328606;
  const double inv = 1.0 / static_cast<double>(n);
  const double inv2 = inv * inv;
  return std::log(static_cast<double>(n)) + kEulerGamma + 0.5 * inv -
         inv2 / 12.0 + inv2 * inv2 / 120.0;
}

}  // namespace xdbft
