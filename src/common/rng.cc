#include "common/rng.h"

#include <cmath>

namespace xdbft {

double Rng::NextExponential(double mean) {
  // Inverse-CDF: -mean * ln(U), U in (0,1].
  return -mean * std::log(NextDoubleOpenZero());
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second deviate for simplicity.
  const double u1 = NextDoubleOpenZero();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace xdbft
