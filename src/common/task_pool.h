// TaskPool: a small work-stealing thread pool for CPU-bound fan-out work
// (the parallel FT-plan enumerator is the primary client). Each worker owns
// a bounded deque; it pops its own queue LIFO (cache-warm) and steals FIFO
// from a victim when empty. Submitting to a full pool never blocks and
// never drops work: the task runs inline on the submitting thread instead
// (caller-runs backpressure). The destructor drains every queued task
// before joining, so no accepted task is ever lost.
//
// ParallelForEach is the structured-join helper: it fans fn(0..n-1) out as
// tasks, lets the calling thread help execute queued work while it waits,
// and rethrows the first exception any task threw once all n completed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xdbft {

/// \brief Monotonic execution counters (snapshot via TaskPool::stats()).
struct TaskPoolStats {
  /// Tasks executed on a worker thread (own-queue pops + steals).
  uint64_t tasks_executed = 0;
  /// Subset of tasks_executed taken from another worker's queue.
  uint64_t tasks_stolen = 0;
  /// Tasks run on the submitting/waiting thread (backpressure or helping).
  uint64_t tasks_inline = 0;
};

class TaskPool {
 public:
  using Task = std::function<void()>;

  /// \brief Spawns `num_threads` workers (0 = run every task inline on the
  /// submitting thread, useful as a sequential fallback). `queue_capacity`
  /// bounds each worker's deque.
  explicit TaskPool(int num_threads, size_t queue_capacity = 1024);

  /// \brief Drains all queued tasks, then joins the workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// \brief Worker index of the calling thread in [0, num_threads), or -1
  /// for threads this pool does not own (e.g. the submitting thread).
  int CurrentWorkerId() const;

  /// \brief Enqueue `task`; runs it inline when every queue is full or the
  /// pool has no workers. Must not be called after the destructor started.
  void Submit(Task task);

  /// \brief Bounded admission: enqueue `task` and return true, or return
  /// false — without running anything — when the pool has no workers or
  /// every queue is full. The caller keeps control of overload handling
  /// (run inline, retry later, shed the request); pass an lvalue if the
  /// task must still run on rejection, since the by-value argument is
  /// consumed either way.
  bool TrySubmit(Task task);

  /// \brief Run fn(i) for every i in [0, n), blocking until all complete.
  /// The calling thread executes queued tasks while waiting. If any task
  /// throws, the first captured exception is rethrown after the join (the
  /// remaining tasks still run). Not reentrant from inside a task.
  void ParallelForEach(size_t n, const std::function<void(size_t)>& fn);

  TaskPoolStats stats() const;

 private:
  struct WorkerQueue {
    mutable std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(int worker_id);
  /// \brief Enqueue on the first non-full queue starting from the caller's
  /// preferred one; false (task left untouched) when all are full.
  bool EnqueueTask(Task& task);
  /// \brief Pop a task for `worker_id` (own queue LIFO, then steal FIFO).
  /// `worker_id` < 0 scans all queues FIFO (external helper thread).
  bool PopTask(int worker_id, Task* task, bool* stolen);
  /// \brief Run one queued task on the calling (non-worker) thread.
  bool RunOneTaskInline();

  const size_t queue_capacity_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake coordination: pending_ counts queued-but-not-yet-popped
  // tasks; workers sleep on cv_ when it is zero.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> pending_{0};
  bool stopping_ = false;

  std::atomic<uint64_t> next_queue_{0};  // round-robin submission cursor
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> tasks_inline_{0};
};

}  // namespace xdbft
