// Result<T>: a value-or-Status, the library's counterpart to arrow::Result.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xdbft {

/// \brief Holds either a successfully computed value of type T or the Status
/// describing why the computation failed.
///
/// Constructing from a value yields ok(); constructing from a non-OK Status
/// yields an error. Constructing from an OK Status is a programming error and
/// is converted to an Internal error so misuse is still observable.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(v_).ok()) {
      v_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// \brief The error status; OK() when this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  /// \brief Access the contained value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value, or `fallback` if this Result is an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace xdbft

/// Propagate the error of a Result, or assign its value to `lhs`.
#define XDBFT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define XDBFT_ASSIGN_OR_RETURN(lhs, rexpr) \
  XDBFT_ASSIGN_OR_RETURN_IMPL(             \
      XDBFT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define XDBFT_CONCAT_INNER_(a, b) a##b
#define XDBFT_CONCAT_(a, b) XDBFT_CONCAT_INNER_(a, b)
