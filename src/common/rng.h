// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (data generation, failure
// traces, perturbation experiments) draws from Rng seeded explicitly, so all
// experiments are exactly reproducible. The core generator is xoshiro256**
// seeded via splitmix64 (public-domain algorithms by Blackman & Vigna).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

namespace xdbft {

/// \brief splitmix64 step; used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** generator with convenience draws used across the
/// library. Not thread-safe; use one instance per thread/component.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  /// \brief Re-seed the generator deterministically from a single value.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& si : s_) si = SplitMix64(sm);
  }

  /// \brief Next raw 64-bit draw.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// \brief Uniform double in (0, 1] — safe as input to log().
  double NextDoubleOpenZero() { return 1.0 - NextDouble(); }

  /// \brief Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextBounded(span));
  }

  /// \brief Uniform integer in [0, bound); bound must be > 0. Uses Lemire's
  /// nearly-divisionless method with rejection to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    // Rejection sampling over the top bits keeps the draw unbiased.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<uint64_t>(m);
    if (l < bound) {
      const uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// \brief Exponentially distributed draw with the given mean (> 0).
  double NextExponential(double mean);

  /// \brief Standard normal draw (Box-Muller).
  double NextGaussian();

  /// \brief Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      const size_t j = NextBounded(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace xdbft
