// Minimal leveled logging with compile-out-able debug level and
// assertion-style checks (Google glog-like surface).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace xdbft {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level actually emitted (default kInfo).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return ss_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream ss_;
};

// Swallows streamed operands when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Lets the ternary in XDBFT_CHECK produce void on both arms while still
// allowing `XDBFT_CHECK(x) << "context"` (glog's voidify trick).
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace xdbft

#define XDBFT_LOG(level)                                                   \
  ::xdbft::internal::LogMessage(::xdbft::LogLevel::k##level, __FILE__,     \
                                __LINE__)                                  \
      .stream()

/// Fatal check: prints the failed condition (plus any streamed context)
/// and aborts.
#define XDBFT_CHECK(cond)                                                   \
  (cond) ? (void)0                                                          \
         : ::xdbft::internal::LogMessageVoidify() &                         \
               ::xdbft::internal::LogMessage(::xdbft::LogLevel::kError,     \
                                             __FILE__, __LINE__, true)      \
                       .stream()                                            \
                   << "Check failed: " #cond " "

#define XDBFT_CHECK_OK(expr)                                       \
  do {                                                             \
    ::xdbft::Status _st = (expr);                                  \
    XDBFT_CHECK(_st.ok()) << _st.ToString();                       \
  } while (false)

#define XDBFT_DCHECK(cond) XDBFT_CHECK(cond)
