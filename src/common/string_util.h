// Small string helpers used by explain printers and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xdbft {

/// \brief Join the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// \brief Split `s` on a single-character delimiter (no empty trailing part).
std::vector<std::string> Split(const std::string& s, char delim);

/// \brief printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Render seconds as "1h 02m 03.4s" style human duration.
std::string HumanDuration(double seconds);

/// \brief Render a byte count as "1.2 GiB" style.
std::string HumanBytes(uint64_t bytes);

/// \brief Left-pad `s` with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, size_t width);

/// \brief Right-pad `s` with spaces to at least `width` characters.
std::string PadRight(const std::string& s, size_t width);

}  // namespace xdbft
