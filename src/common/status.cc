#include "common/status.h"

namespace xdbft {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace xdbft
