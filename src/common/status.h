// Status: error-handling primitive used across the library (Arrow/RocksDB
// idiom). Functions that can fail return Status (or Result<T>, see result.h)
// instead of throwing exceptions across public API boundaries.
#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace xdbft {

/// \brief Error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kAborted = 7,
  kFailedPrecondition = 8,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome with an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the OK
/// case (single enum); error messages are heap-allocated strings.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace xdbft

/// Propagate a non-OK Status to the caller.
#define XDBFT_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::xdbft::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)
