#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace xdbft {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) return "-" + HumanDuration(-seconds);
  if (seconds < 60.0) return StrFormat("%.2fs", seconds);
  const int64_t total = static_cast<int64_t>(seconds);
  const int64_t h = total / 3600;
  const int64_t m = (total % 3600) / 60;
  const double s = seconds - static_cast<double>(h * 3600 + m * 60);
  if (h > 0) return StrFormat("%ldh %02ldm %04.1fs", h, m, s);
  return StrFormat("%ldm %04.1fs", m, s);
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace xdbft
