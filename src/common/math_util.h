// Numeric helpers shared by the cost model and simulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace xdbft {

/// \brief True iff |a - b| <= atol + rtol * |b|.
inline bool ApproxEqual(double a, double b, double rtol = 1e-9,
                        double atol = 1e-12) {
  return std::fabs(a - b) <= atol + rtol * std::fabs(b);
}

/// \brief Clamp x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

/// \brief Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// \brief Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(const std::vector<double>& xs);

/// \brief Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double Percentile(std::vector<double> xs, double p);

/// \brief Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// \brief Spearman rank correlation of two equal-length series.
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// \brief n-th harmonic number H_n (used by Zipf-like generators). Exact
/// summation for small n, O(1) Euler-Maclaurin expansion (accurate to < 1
/// ulp) above a small-n cutoff.
double HarmonicNumber(uint64_t n);

}  // namespace xdbft
