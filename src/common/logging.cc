#include "common/logging.h"

#include <atomic>

namespace xdbft {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal_ || static_cast<int>(level) >= g_level.load();
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    ss_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << ss_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace xdbft
