#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace xdbft {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Serializes the final write so lines from concurrent threads never
// interleave mid-line (each message is fully assembled in its
// LogMessage's own ostringstream first; only the emit is locked).
std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

// ISO-8601 UTC with milliseconds: 2015-06-04T12:34:56.789Z.
std::string FormatTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[72];
  std::snprintf(buf, sizeof(buf),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03" PRId64 "Z",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int64_t>(ms));
  return buf;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal_ || static_cast<int>(level) >= g_level.load();
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    ss_ << FormatTimestamp() << " [" << LevelName(level_) << " " << base
        << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::string line = ss_.str();
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::cerr << line << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace xdbft
