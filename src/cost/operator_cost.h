// Cardinality-based estimation of per-operator runtime cost tr(o) and
// materialization cost tm(o) (paper §2.1, footnote referencing [14]).
#pragma once

#include "cost/cost_params.h"
#include "cost/storage_model.h"
#include "plan/plan.h"

namespace xdbft::cost {

/// \brief Per-row CPU/scan rates used to turn cardinalities into runtime
/// costs. Defaults approximate a MySQL-backed executor on the paper's
/// commodity nodes; calibrate with engine::CostCalibrator for real runs.
struct ExecutionRates {
  /// Rows scanned per second per node.
  double scan_rows_per_sec = 2.0e6;
  /// Rows filtered/projected per second per node.
  double cpu_rows_per_sec = 5.0e6;
  /// Rows passed through a hash join (probe side) per second per node.
  double join_rows_per_sec = 1.5e6;
  /// Hash-table build rows per second per node.
  double build_rows_per_sec = 2.5e6;
  /// Rows aggregated per second per node.
  double agg_rows_per_sec = 2.0e6;
  /// Rows repartitioned (shuffled over the network) per second per node.
  double shuffle_rows_per_sec = 0.8e6;
  /// Rows sorted per second per node (ignoring the log factor).
  double sort_rows_per_sec = 1.0e6;
};

/// \brief Estimates tr(o)/tm(o) for every operator of a plan from the
/// operators' input/output cardinalities.
///
/// Costs are *accumulated partition-parallel* costs: cardinalities are
/// divided by the number of nodes, matching the paper's definition of tr/tm
/// ("given for partition parallel execution").
class OperatorCostEstimator {
 public:
  OperatorCostEstimator(ExecutionRates rates, StorageMedium medium,
                        int num_nodes)
      : rates_(rates), medium_(medium), num_nodes_(num_nodes) {}

  /// \brief Fill in runtime_cost and materialize_cost for every node of
  /// `plan` whose costs are unset (== 0 for non-scan operators), using
  /// output_rows/row_width_bytes. Scans keep caller-provided runtime costs.
  Status EstimateAll(plan::Plan* plan) const;

  /// \brief tr(o) for a single node given its input cardinalities.
  double RuntimeCost(const plan::Plan& plan, plan::OpId id) const;

  /// \brief tm(o): cost of writing o's output to the medium,
  /// partition-parallel over num_nodes.
  double MaterializeCost(const plan::PlanNode& node) const;

  const StorageMedium& medium() const { return medium_; }

 private:
  ExecutionRates rates_;
  StorageMedium medium_;
  int num_nodes_;
};

}  // namespace xdbft::cost
