#include "cost/storage_model.h"

namespace xdbft::cost {

StorageMedium ExternalIscsiStorage() {
  StorageMedium m;
  m.name = "iscsi-external";
  m.write_bandwidth_bps = 110.0 * 1024 * 1024;
  m.read_bandwidth_bps = 110.0 * 1024 * 1024;
  m.latency_seconds = 0.05;
  m.fault_tolerant = true;
  return m;
}

StorageMedium LocalDiskStorage() {
  StorageMedium m;
  m.name = "local-disk";
  m.write_bandwidth_bps = 160.0 * 1024 * 1024;  // 10k rpm SCSI
  m.read_bandwidth_bps = 160.0 * 1024 * 1024;
  m.latency_seconds = 0.01;
  m.fault_tolerant = false;
  return m;
}

StorageMedium InMemoryStorage() {
  StorageMedium m;
  m.name = "memory";
  m.write_bandwidth_bps = 8.0 * 1024 * 1024 * 1024;
  m.read_bandwidth_bps = 8.0 * 1024 * 1024 * 1024;
  m.latency_seconds = 0.0;
  m.fault_tolerant = false;
  return m;
}

}  // namespace xdbft::cost
