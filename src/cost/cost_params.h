// Parameters of the cost-based fault-tolerance model (paper §3, §5.1):
// cluster statistics (n, MTBF, MTTR) and model constants (CONST_pipe,
// CONST_cost, desired success probability S).
#pragma once

#include <string>

#include "common/status.h"

namespace xdbft::cost {

/// \brief Statistics of the cluster executing the plan (paper: provided by
/// getCostStats). MTBF/MTTR are per *node*, in seconds.
struct ClusterStats {
  /// Number of nodes participating in partition-parallel execution.
  int num_nodes = 10;
  /// Mean time between failures of a single node, seconds.
  double mtbf_seconds = 86400.0;  // 1 day
  /// Mean time to repair/redeploy after a detected failure, seconds.
  double mttr_seconds = 1.0;

  /// Correlated-failure extension (arXiv:1508.04907): mean seconds between
  /// correlated burst events that take down several nodes of one placement
  /// group at once. 0 = no correlated failures (the paper's independent
  /// model); must otherwise be positive and finite.
  double burst_mtbf_seconds = 0.0;
  /// Fraction of a placement group a single burst takes down, in (0, 1].
  double burst_fanout = 1.0;
  /// Number of shared-fate placement groups (racks / power domains) the
  /// enumerator may place materialization points on. 1 = placement-unaware.
  int num_placement_groups = 1;
  /// Relative cost penalty for reading a materialized input from a
  /// *different* placement group (cross-rack bandwidth): the placed runtime
  /// of an operator grows by penalty * materialize_cost per remote input.
  double remote_read_penalty = 0.25;

  /// \brief Effective MTBF seen by a partition-parallel operator: any of the
  /// n independent nodes failing interrupts it, so the cluster-level failure
  /// process has rate n/MTBF (Fig. 1: P(success) = e^{-t n / MTBF}).
  double effective_mtbf() const {
    return mtbf_seconds / static_cast<double>(num_nodes);
  }

  /// \brief True when the correlated-failure term is active.
  bool has_bursts() const { return burst_mtbf_seconds > 0.0; }

  Status Validate() const;
  std::string ToString() const;
};

/// \brief Constants of the cost model (paper Table 1 and §3.3/§3.5).
struct CostModelParams {
  /// CONST_pipe in (0, 1]: discounts the summed runtime of a pipelined
  /// sub-plan to reflect pipeline parallelism (Eq. 1). Calibrated per PDE;
  /// the paper derives 1.0 for XDB.
  double pipe_constant = 1.0;
  /// CONST_cost: converts wall-clock seconds into internal cost units
  /// (MTBF_cost = MTBF * CONST_cost). The paper uses 1 since its estimates
  /// are real times.
  double cost_constant = 1.0;
  /// Desired probability of success S used for the attempts percentile
  /// (Eq. 6); the paper uses the 95th percentile.
  double success_target = 0.95;
  /// Use the exact wasted-time formula (Eq. 3) instead of the t/2
  /// approximation (Eq. 4). The paper (and our default) uses the
  /// approximation.
  bool exact_wasted_time = false;
  /// Extension (not in the paper): evaluate the attempts percentile with
  /// S^(1/n) instead of S, so that all n partition-parallel executions
  /// jointly meet the desired success probability. The paper's
  /// single-machine model (default: off) is insensitive to the cluster
  /// size, which makes it optimistic on large clusters; this switch
  /// restores the Fig.-1 intuition that bigger clusters need more
  /// materialization. See bench/ablation_cluster_scaling.
  bool scale_success_target_with_cluster = false;

  /// Write-ahead-lineage extension (arXiv:2403.08062). When enabled, every
  /// collapsed operator logs the lineage of its internal intermediates
  /// *before* results flow downstream: its runtime grows by
  /// wal_write_cost * lineage_volume up front, and recovery replays from
  /// the last logged frontier instead of recomputing, paying only
  /// wal_replay_factor of the wasted time per attempt. Off by default —
  /// with wal_enabled == false all estimates are bit-identical to the
  /// paper's model.
  bool wal_enabled = false;
  /// Log-write overhead per unit of intermediate materialization volume
  /// (relative to tm); must be >= 0 and finite.
  double wal_write_cost = 0.15;
  /// Fraction of lost work re-paid when replaying the lineage log instead
  /// of recomputing; must be in [0, 1]. 1.0 = replay is as expensive as
  /// recomputation (degenerates to no-mat lineage behavior).
  double wal_replay_factor = 0.25;

  Status Validate() const;
};

/// \brief Convenience: well-known cluster setups from the paper's Figure 1.
ClusterStats MakeCluster(int num_nodes, double mtbf_seconds,
                         double mttr_seconds = 1.0);

/// \brief Named durations used throughout the experiments.
constexpr double kSecondsPerMinute = 60.0;
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;
constexpr double kSecondsPerMonth = 30.0 * kSecondsPerDay;

}  // namespace xdbft::cost
