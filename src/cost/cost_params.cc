#include "cost/cost_params.h"

#include <cmath>

#include "common/string_util.h"

namespace xdbft::cost {

Status ClusterStats::Validate() const {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  if (!(mtbf_seconds > 0.0) || !std::isfinite(mtbf_seconds)) {
    return Status::InvalidArgument("mtbf_seconds must be positive and finite");
  }
  if (mttr_seconds < 0.0 || !std::isfinite(mttr_seconds)) {
    return Status::InvalidArgument("mttr_seconds must be non-negative");
  }
  if (burst_mtbf_seconds < 0.0 || !std::isfinite(burst_mtbf_seconds)) {
    return Status::InvalidArgument(
        "burst_mtbf_seconds must be non-negative and finite (0 = off)");
  }
  if (!(burst_fanout > 0.0) || burst_fanout > 1.0) {
    return Status::InvalidArgument("burst_fanout must be in (0, 1]");
  }
  if (num_placement_groups <= 0) {
    return Status::InvalidArgument("num_placement_groups must be positive");
  }
  if (remote_read_penalty < 0.0 || !std::isfinite(remote_read_penalty)) {
    return Status::InvalidArgument(
        "remote_read_penalty must be non-negative and finite");
  }
  return Status::OK();
}

std::string ClusterStats::ToString() const {
  std::string out = StrFormat("Cluster(n=%d, MTBF=%s, MTTR=%s", num_nodes,
                              HumanDuration(mtbf_seconds).c_str(),
                              HumanDuration(mttr_seconds).c_str());
  if (has_bursts()) {
    out += StrFormat(", burstMTBF=%s, fanout=%.2f",
                     HumanDuration(burst_mtbf_seconds).c_str(), burst_fanout);
  }
  if (num_placement_groups > 1) {
    out += StrFormat(", groups=%d", num_placement_groups);
  }
  out += ")";
  return out;
}

Status CostModelParams::Validate() const {
  if (!(pipe_constant > 0.0) || pipe_constant > 1.0) {
    return Status::InvalidArgument("pipe_constant must be in (0, 1]");
  }
  if (!(cost_constant > 0.0) || !std::isfinite(cost_constant)) {
    return Status::InvalidArgument("cost_constant must be positive and finite");
  }
  if (!(success_target > 0.0) || !(success_target < 1.0)) {
    return Status::InvalidArgument("success_target must be in (0, 1)");
  }
  if (wal_write_cost < 0.0 || !std::isfinite(wal_write_cost)) {
    return Status::InvalidArgument(
        "wal_write_cost must be non-negative and finite");
  }
  if (wal_replay_factor < 0.0 || wal_replay_factor > 1.0) {
    return Status::InvalidArgument("wal_replay_factor must be in [0, 1]");
  }
  return Status::OK();
}

ClusterStats MakeCluster(int num_nodes, double mtbf_seconds,
                         double mttr_seconds) {
  ClusterStats s;
  s.num_nodes = num_nodes;
  s.mtbf_seconds = mtbf_seconds;
  s.mttr_seconds = mttr_seconds;
  return s;
}

}  // namespace xdbft::cost
