// Storage-medium model used to derive materialization costs tm(o) from
// output cardinalities (paper §2.1: "these estimates are calculated based on
// input/output cardinalities of each operator").
#pragma once

#include <string>

namespace xdbft::cost {

/// \brief A storage medium to which intermediates can be materialized.
///
/// The paper's testbed materializes sub-plan output to an external iSCSI
/// store over 1 GbE; we model a medium by sequential bandwidth and a fixed
/// per-materialization latency. Partition-parallel writes from n nodes share
/// the medium's aggregate bandwidth.
struct StorageMedium {
  std::string name = "external";
  /// Aggregate sequential write bandwidth of the medium, bytes/second.
  double write_bandwidth_bps = 110.0 * 1024 * 1024;  // ~1GbE iSCSI
  /// Aggregate sequential read bandwidth, bytes/second (for recovery reads).
  double read_bandwidth_bps = 110.0 * 1024 * 1024;
  /// Fixed setup latency per materialized intermediate, seconds.
  double latency_seconds = 0.05;
  /// True if the medium survives node failures (§2.2 requires this for the
  /// cost model to be exact).
  bool fault_tolerant = true;

  /// \brief Seconds to write `rows` rows of `width` bytes.
  double WriteSeconds(double rows, double width_bytes) const {
    return latency_seconds + rows * width_bytes / write_bandwidth_bps;
  }
  /// \brief Seconds to read back `rows` rows of `width` bytes.
  double ReadSeconds(double rows, double width_bytes) const {
    return latency_seconds + rows * width_bytes / read_bandwidth_bps;
  }
};

/// \brief Common presets.
StorageMedium ExternalIscsiStorage();
StorageMedium LocalDiskStorage();
StorageMedium InMemoryStorage();

}  // namespace xdbft::cost
