#include "cost/operator_cost.h"

#include <algorithm>

namespace xdbft::cost {

using plan::OpType;
using plan::Plan;
using plan::PlanNode;

double OperatorCostEstimator::RuntimeCost(const Plan& plan,
                                          plan::OpId id) const {
  const PlanNode& node = plan.node(id);
  const double nodes = static_cast<double>(num_nodes_);
  double input_rows = 0.0;
  for (plan::OpId in : node.inputs) {
    input_rows += plan.node(in).output_rows;
  }
  const double in_per_node = input_rows / nodes;
  const double out_per_node = node.output_rows / nodes;
  switch (node.type) {
    case OpType::kTableScan:
      return out_per_node / rates_.scan_rows_per_sec;
    case OpType::kFilter:
    case OpType::kProject:
    case OpType::kLimit:
    case OpType::kMapUdf:
      return in_per_node / rates_.cpu_rows_per_sec;
    case OpType::kHashJoin: {
      // Build the smaller input, probe with the larger.
      double build_rows = 0.0, probe_rows = 0.0;
      if (node.inputs.size() == 2) {
        const double l = plan.node(node.inputs[0]).output_rows;
        const double r = plan.node(node.inputs[1]).output_rows;
        build_rows = std::min(l, r) / nodes;
        probe_rows = std::max(l, r) / nodes;
      } else {
        probe_rows = in_per_node;
      }
      return build_rows / rates_.build_rows_per_sec +
             probe_rows / rates_.join_rows_per_sec +
             out_per_node / rates_.cpu_rows_per_sec;
    }
    case OpType::kHashAggregate:
    case OpType::kReduceUdf:
      return in_per_node / rates_.agg_rows_per_sec;
    case OpType::kSort:
      return in_per_node / rates_.sort_rows_per_sec;
    case OpType::kRepartition:
      return in_per_node / rates_.shuffle_rows_per_sec;
    case OpType::kUnion:
      return in_per_node / rates_.cpu_rows_per_sec;
    case OpType::kSink:
      return out_per_node / rates_.cpu_rows_per_sec;
  }
  return 0.0;
}

double OperatorCostEstimator::MaterializeCost(const PlanNode& node) const {
  const double rows_per_node =
      node.output_rows / static_cast<double>(num_nodes_);
  // All nodes write concurrently and share the medium's aggregate
  // bandwidth, so the parallel write time equals total bytes / bandwidth.
  const double bytes_total = rows_per_node * node.row_width_bytes *
                             static_cast<double>(num_nodes_);
  return medium_.latency_seconds + bytes_total / medium_.write_bandwidth_bps;
}

Status OperatorCostEstimator::EstimateAll(Plan* plan) const {
  if (plan == nullptr) return Status::InvalidArgument("plan is null");
  for (const auto& n : plan->nodes()) {
    PlanNode& node = plan->mutable_node(n.id);
    if (node.runtime_cost == 0.0 && node.type != OpType::kTableScan) {
      node.runtime_cost = RuntimeCost(*plan, node.id);
    }
    if (node.materialize_cost == 0.0) {
      node.materialize_cost = MaterializeCost(node);
    }
  }
  return Status::OK();
}

}  // namespace xdbft::cost
