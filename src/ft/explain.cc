#include "ft/explain.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace xdbft::ft {

std::string MarginalAnalysis::ToString() const {
  std::ostringstream os;
  os << StrFormat("Materialization marginals (configured cost %.2fs):\n",
                  configured_cost);
  for (const auto& m : operators) {
    os << StrFormat(
        "  [%2d] %-28s m=%d  toggled cost %.2fs  (%s %.2fs)\n", m.op,
        m.label.c_str(), m.materialized ? 1 : 0, m.cost_toggled,
        m.benefit() >= 0 ? "saves" : "LOSES", std::fabs(m.benefit()));
  }
  return os.str();
}

Result<MarginalAnalysis> AnalyzeMarginals(const plan::Plan& plan,
                                          const MaterializationConfig& config,
                                          const FtCostContext& context) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(config.Validate(plan));
  FtCostModel model(context);
  XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate base, model.Estimate(plan, config));

  MarginalAnalysis out;
  out.configured_cost = base.dominant_cost;
  for (plan::OpId id : EnumerableOperators(plan)) {
    MaterializationConfig toggled = config;
    toggled.set_materialized(id, !config.materialized(id));
    XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est,
                           model.Estimate(plan, toggled));
    OperatorMarginal m;
    m.op = id;
    m.label = plan.node(id).label;
    m.materialized = config.materialized(id);
    m.cost_as_configured = base.dominant_cost;
    m.cost_toggled = est.dominant_cost;
    out.operators.push_back(std::move(m));
  }
  return out;
}

}  // namespace xdbft::ft
