#include "ft/explain.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace xdbft::ft {

std::string MarginalAnalysis::ToString() const {
  std::ostringstream os;
  os << StrFormat("Materialization marginals (configured cost %.2fs):\n",
                  configured_cost);
  for (const auto& m : operators) {
    os << StrFormat(
        "  [%2d] %-28s m=%d  toggled cost %.2fs  (%s %.2fs)\n", m.op,
        m.label.c_str(), m.materialized ? 1 : 0, m.cost_toggled,
        m.benefit() >= 0 ? "saves" : "LOSES", std::fabs(m.benefit()));
  }
  return os.str();
}

std::string AccuracyReport::ToString() const {
  std::ostringstream os;
  os << "Predicted failure behavior per collapsed operator:\n";
  os << StrFormat("  %-28s %10s %8s %8s %10s %10s\n", "operator", "t(c)",
                  "gamma", "a(c)", "w(c)", "T(c)");
  for (const auto& p : operators) {
    os << StrFormat("  %-28s %10.2f %8.4f %8.3f %10.2f %10.2f\n",
                    p.label.c_str(), p.t, p.gamma, p.attempts, p.wasted,
                    p.total);
  }
  os << StrFormat(
      "  predicted: runtime %.2fs (dominant path), %.3f extra attempts\n",
      predicted_runtime, predicted_attempts);
  if (observed.empty()) {
    os << "  observed: (no instrumented run)\n";
    return os.str();
  }
  for (const auto& o : observed) {
    os << StrFormat(
        "  observed [%s]: %d failures, %d recovery re-executions of %d "
        "task attempts, runtime %.3fs\n",
        o.source.c_str(), o.failures, o.recovery_executions,
        o.task_executions, o.runtime_seconds);
  }
  return os.str();
}

Result<AccuracyReport> BuildAccuracyReport(const plan::Plan& plan,
                                           const MaterializationConfig& config,
                                           const FtCostContext& context) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(config.Validate(plan));
  XDBFT_RETURN_NOT_OK(context.Validate());
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, config, context.model.pipe_constant));
  const FailureParams params = context.MakeFailureParams();

  AccuracyReport out;
  out.operators.reserve(cp.ops().size());
  for (const CollapsedOp& c : cp.ops()) {
    PredictedOperator p;
    p.label = StrFormat("c%d:%s", c.id, plan.node(c.anchor).label.c_str());
    p.t = c.total_cost();
    p.gamma = SuccessProbability(p.t, params.mtbf_cost);
    p.attempts =
        ExpectedAttempts(p.t, params.mtbf_cost, params.success_target);
    p.wasted = WastedTime(p.t, params);
    p.total = OperatorTotalRuntime(p.t, params);
    out.predicted_attempts += p.attempts;
    out.operators.push_back(std::move(p));
  }
  FtCostModel model(context);
  XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est, model.Estimate(cp));
  out.predicted_runtime = est.dominant_cost;
  return out;
}

Result<MarginalAnalysis> AnalyzeMarginals(const plan::Plan& plan,
                                          const MaterializationConfig& config,
                                          const FtCostContext& context) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(config.Validate(plan));
  FtCostModel model(context);
  XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate base, model.Estimate(plan, config));

  MarginalAnalysis out;
  out.configured_cost = base.dominant_cost;
  for (plan::OpId id : EnumerableOperators(plan)) {
    MaterializationConfig toggled = config;
    toggled.set_materialized(id, !config.materialized(id));
    XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est,
                           model.Estimate(plan, toggled));
    OperatorMarginal m;
    m.op = id;
    m.label = plan.node(id).label;
    m.materialized = config.materialized(id);
    m.cost_as_configured = base.dominant_cost;
    m.cost_toggled = est.dominant_cost;
    out.operators.push_back(std::move(m));
  }
  return out;
}

}  // namespace xdbft::ft
