// FtPlanEnumerator: the paper's findBestFTPlan procedure (Listing 1).
// Given the top-k candidate execution plans produced by a cost-based
// optimizer, enumerates materialization configurations over each plan's
// free operators, estimates every [P, M_P] via the collapsed-plan cost
// model, applies pruning rules 1-3, and returns the fault-tolerant plan
// with the shortest dominant path.
//
// The search runs on a work-stealing TaskPool when num_threads > 1:
// candidate plans and, within a plan, contiguous mask ranges of the
// configuration space become tasks; rule-3 state is shared through an
// atomic cost bound plus a sharded, mutex-striped dominant-path memo; and
// the winner is selected by the total order (cost, plan index, mask), so
// the result is bit-identical to the sequential search at any thread
// count (see DESIGN.md "Concurrency model").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/task_pool.h"
#include "ft/ft_cost.h"
#include "ft/pruning.h"

namespace xdbft::obs {
class TraceRecorder;
}  // namespace xdbft::obs

namespace xdbft::ft {

/// \brief Knobs of the enumeration procedure.
struct EnumerationOptions {
  PruningOptions pruning;
  /// Guard against runaway 2^f enumeration; FindBest fails if a candidate
  /// plan still has more free operators after rules 1-2.
  int max_free_operators = 24;
  /// Worker threads for FindBest: 1 = sequential (default), 0 = use
  /// std::thread::hardware_concurrency(), N > 1 = that many workers. The
  /// selected [P, M_P] and cost are identical at every setting.
  int num_threads = 1;
  /// Optional: record one span per enumeration task on lane
  /// (trace_pid, worker id) — the per-thread timeline of the search.
  obs::TraceRecorder* trace = nullptr;
  int trace_pid = 0;
  /// Optional cross-call rule-3 memo (the AdvisorService's warm-start
  /// hook). When set, FindBest records and probes dominant paths in this
  /// memo instead of a per-call one, so a later FindBest over the *same*
  /// search — identical candidates, context and pruning options — starts
  /// with the previous run's memoized paths and prunes harder.
  ///
  /// Correctness contract: entries memoize complete FT plans of one
  /// specific search, so a memo must never be shared across different
  /// (candidates, context, pruning) keys — a foreign entry could prune
  /// this search's true optimum. Within the same key the result is
  /// bit-identical to a cold run: rule-3 tests are strict, so a warm memo
  /// only removes configurations that provably cost more than the final
  /// bestT (the same argument that makes the parallel search's
  /// mid-enumeration memo fills harmless; DESIGN.md §8).
  ConcurrentDominantPathMemo* shared_memo = nullptr;

  /// \brief Reject structurally unusable options (negative thread counts,
  /// free-operator budgets outside the 62-bit mask range) up front instead
  /// of silently misbehaving deep in the search.
  Status Validate() const;
};

/// \brief Counters describing one FindBest run (feeds Fig. 13).
struct EnumerationStats {
  /// Candidate plans passed in (the optimizer's top-k / all join orders).
  uint64_t candidate_plans = 0;
  /// Sum over plans of 2^{#free ops before rules 1-2}: the unpruned
  /// fault-tolerant-plan space.
  uint64_t total_ft_plans_unpruned = 0;
  /// Sum over plans of 2^{#free ops after rules 1-2}: configurations
  /// actually enumerated.
  uint64_t ft_plans_enumerated = 0;
  /// Operators marked non-materializable by rule 1 / rule 2.
  uint64_t rule1_ops_marked = 0;
  uint64_t rule2_ops_marked = 0;
  /// FT plans where rule 3 stopped the path enumeration with at least one
  /// path left unanalyzed (the paper's Fig. 13 counts these and credits
  /// half, since the rule may fire on the first or on the last path).
  uint64_t rule3_early_stops = 0;
  /// FT plans rejected by rule 3 (regardless of whether paths remained).
  uint64_t rule3_rejections = 0;
  uint64_t rule3_rpt_hits = 0;   // RPt > bestT (no cost-model call needed)
  uint64_t rule3_tpt_hits = 0;   // TPt > bestT
  uint64_t rule3_memo_hits = 0;  // Eq. 9 dominance over a memoized path
  /// Memo lookups that did not prune (the complement of rule3_memo_hits;
  /// hits/(hits+misses) is the memo's effectiveness).
  uint64_t rule3_memo_misses = 0;
  /// Execution paths whose TPt was computed.
  uint64_t paths_evaluated = 0;
  /// Execution paths rule 3 skipped without analyzing them (the per-path
  /// share of the search space pruned by rule 3; the aggregate
  /// ft_plans_enumerated count cannot distinguish these).
  uint64_t rule3_paths_skipped = 0;
  /// Parallel-execution accounting (informational; not search counters):
  /// enumeration tasks run and how many a worker stole from a sibling.
  uint64_t tasks_executed = 0;
  uint64_t tasks_stolen = 0;

  /// \brief Add every counter of `other` into this (the join step of the
  /// per-thread stats merge; exact under concurrency because each worker
  /// slot is written by one thread only).
  void MergeFrom(const EnumerationStats& other);

  std::string ToString() const;
};

/// \brief The chosen fault-tolerant plan [P, M_P].
struct FtPlanChoice {
  /// Index into the candidate list FindBest was given.
  size_t plan_index = 0;
  /// The chosen plan, with rule-1/2 markings applied.
  plan::Plan plan;
  MaterializationConfig config;
  /// Estimated runtime under failures (dominant-path TPt) — bestT.
  double estimated_cost = 0.0;
  CollapsedPath dominant_path;
  /// Placement group per CollapsedId of the chosen configuration's
  /// collapsed plan (empty when placement is inactive: one group and no
  /// correlated failures).
  std::vector<int> placement_groups;
};

/// \brief Implements findBestFTPlan (Listing 1).
class FtPlanEnumerator {
 public:
  explicit FtPlanEnumerator(FtCostContext context,
                            EnumerationOptions options = {})
      : model_(context), options_(options) {}

  /// \brief Enumerate [P, M_P] over all candidate plans and return the one
  /// with the shortest dominant path. Memoized rule-3 state (bestT and
  /// dominant paths) is shared across all candidates, as §4.3 recommends.
  /// Deterministic at any options_.num_threads: ties on cost are broken by
  /// the canonical plan id (plan index, then configuration mask).
  Result<FtPlanChoice> FindBest(const std::vector<plan::Plan>& candidates);

  /// \brief Convenience: single-plan form.
  Result<FtPlanChoice> FindBest(const plan::Plan& plan);

  /// \brief Enumerate every configuration of one plan and return the
  /// estimates in enumeration (mask) order — used by the accuracy and
  /// robustness experiments (Fig. 12b, Table 3). No pruning is applied.
  Result<std::vector<std::pair<MaterializationConfig, double>>>
  EnumerateAll(const plan::Plan& plan) const;

  const EnumerationStats& stats() const { return stats_; }
  const FtCostModel& cost_model() const { return model_; }

  /// \brief Worker count `num_threads` resolves to (0 -> hardware
  /// concurrency, minimum 1).
  static int ResolveThreads(int num_threads);

 private:
  struct PreparedPlan;
  struct SearchState;
  struct MaskRange {
    size_t plan_index = 0;
    uint64_t lo = 0;
    uint64_t hi = 0;
  };

  /// \brief Rules 1-2 pre-pass over one candidate (plan copy + marking).
  PreparedPlan Prepare(const plan::Plan& candidate, size_t plan_index) const;
  /// \brief Evaluate configurations [lo, hi) of one prepared plan against
  /// the shared search state, accumulating into `local` (single-writer).
  void EvaluateMaskRange(const PreparedPlan& prepared, const MaskRange& range,
                         SearchState* state, EnumerationStats* local) const;

  FtCostModel model_;
  EnumerationOptions options_;
  EnumerationStats stats_;
  std::unique_ptr<TaskPool> pool_;  // lazily created, reused across calls
};

}  // namespace xdbft::ft
