// FtPlanEnumerator: the paper's findBestFTPlan procedure (Listing 1).
// Given the top-k candidate execution plans produced by a cost-based
// optimizer, enumerates materialization configurations over each plan's
// free operators, estimates every [P, M_P] via the collapsed-plan cost
// model, applies pruning rules 1-3, and returns the fault-tolerant plan
// with the shortest dominant path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "ft/ft_cost.h"
#include "ft/pruning.h"

namespace xdbft::ft {

/// \brief Knobs of the enumeration procedure.
struct EnumerationOptions {
  PruningOptions pruning;
  /// Guard against runaway 2^f enumeration; FindBest fails if a candidate
  /// plan still has more free operators after rules 1-2.
  int max_free_operators = 24;
};

/// \brief Counters describing one FindBest run (feeds Fig. 13).
struct EnumerationStats {
  /// Candidate plans passed in (the optimizer's top-k / all join orders).
  uint64_t candidate_plans = 0;
  /// Sum over plans of 2^{#free ops before rules 1-2}: the unpruned
  /// fault-tolerant-plan space.
  uint64_t total_ft_plans_unpruned = 0;
  /// Sum over plans of 2^{#free ops after rules 1-2}: configurations
  /// actually enumerated.
  uint64_t ft_plans_enumerated = 0;
  /// Operators marked non-materializable by rule 1 / rule 2.
  uint64_t rule1_ops_marked = 0;
  uint64_t rule2_ops_marked = 0;
  /// FT plans where rule 3 stopped the path enumeration with at least one
  /// path left unanalyzed (the paper's Fig. 13 counts these and credits
  /// half, since the rule may fire on the first or on the last path).
  uint64_t rule3_early_stops = 0;
  /// FT plans rejected by rule 3 (regardless of whether paths remained).
  uint64_t rule3_rejections = 0;
  uint64_t rule3_rpt_hits = 0;   // RPt >= bestT (no cost-model call needed)
  uint64_t rule3_tpt_hits = 0;   // TPt >= bestT
  uint64_t rule3_memo_hits = 0;  // Eq. 9 dominance over a memoized path
  /// Memo lookups that did not prune (the complement of rule3_memo_hits;
  /// hits/(hits+misses) is the memo's effectiveness).
  uint64_t rule3_memo_misses = 0;
  /// Execution paths whose TPt was computed.
  uint64_t paths_evaluated = 0;
  /// Execution paths rule 3 skipped without analyzing them (the per-path
  /// share of the search space pruned by rule 3; the aggregate
  /// ft_plans_enumerated count cannot distinguish these).
  uint64_t rule3_paths_skipped = 0;

  std::string ToString() const;
};

/// \brief The chosen fault-tolerant plan [P, M_P].
struct FtPlanChoice {
  /// Index into the candidate list FindBest was given.
  size_t plan_index = 0;
  /// The chosen plan, with rule-1/2 markings applied.
  plan::Plan plan;
  MaterializationConfig config;
  /// Estimated runtime under failures (dominant-path TPt) — bestT.
  double estimated_cost = 0.0;
  CollapsedPath dominant_path;
};

/// \brief Implements findBestFTPlan (Listing 1).
class FtPlanEnumerator {
 public:
  explicit FtPlanEnumerator(FtCostContext context,
                            EnumerationOptions options = {})
      : model_(context), options_(options) {}

  /// \brief Enumerate [P, M_P] over all candidate plans and return the one
  /// with the shortest dominant path. Memoized rule-3 state (bestT and
  /// dominant paths) is shared across all candidates, as §4.3 recommends.
  Result<FtPlanChoice> FindBest(const std::vector<plan::Plan>& candidates);

  /// \brief Convenience: single-plan form.
  Result<FtPlanChoice> FindBest(const plan::Plan& plan);

  /// \brief Enumerate every configuration of one plan and return the
  /// estimates in enumeration (mask) order — used by the accuracy and
  /// robustness experiments (Fig. 12b, Table 3). No pruning is applied.
  Result<std::vector<std::pair<MaterializationConfig, double>>>
  EnumerateAll(const plan::Plan& plan) const;

  const EnumerationStats& stats() const { return stats_; }
  const FtCostModel& cost_model() const { return model_; }

 private:
  FtCostModel model_;
  EnumerationOptions options_;
  EnumerationStats stats_;
};

}  // namespace xdbft::ft
