#include "ft/adaptive.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "common/string_util.h"

namespace xdbft::ft {

using plan::MatConstraint;
using plan::OpId;
using plan::Plan;

namespace {

Status CheckStructurallyIdentical(const Plan& a, const Plan& b) {
  if (a.num_nodes() != b.num_nodes()) {
    return Status::InvalidArgument("plans differ in operator count");
  }
  for (const auto& n : a.nodes()) {
    const auto& m = b.node(n.id);
    if (n.inputs != m.inputs || n.constraint != m.constraint) {
      return Status::InvalidArgument(
          StrFormat("plans differ structurally at operator %d", n.id));
    }
  }
  return Status::OK();
}

}  // namespace

Result<AdaptiveResult> AdaptiveMaterialization(
    const Plan& estimated, const Plan& truth, const FtCostContext& context,
    const EnumerationOptions& options) {
  XDBFT_RETURN_NOT_OK(estimated.Validate());
  XDBFT_RETURN_NOT_OK(truth.Validate());
  XDBFT_RETURN_NOT_OK(CheckStructurallyIdentical(estimated, truth));

  // The static baseline the adaptive pass is compared against.
  FtPlanEnumerator static_enum(context, options);
  XDBFT_ASSIGN_OR_RETURN(FtPlanChoice static_choice,
                         static_enum.FindBest(estimated));

  // hybrid: true statistics for operators that have already executed,
  // estimates for the rest. Decisions made so far are pinned via
  // constraints so later re-optimizations cannot retract them.
  Plan hybrid = estimated;
  AdaptiveResult result;
  result.config = MaterializationConfig::NoMat(estimated);

  for (OpId id : EnumerableOperators(estimated)) {
    // Everything topologically before `id` has executed by the time its
    // materialization decision is due, and `id`'s own input cardinalities
    // are then exactly known — so its own cost re-estimate is accurate
    // too. Reveal true statistics up to and including `id`.
    for (OpId done = 0; done <= id; ++done) {
      hybrid.mutable_node(done).runtime_cost =
          truth.node(done).runtime_cost;
      hybrid.mutable_node(done).materialize_cost =
          truth.node(done).materialize_cost;
      hybrid.mutable_node(done).output_rows = truth.node(done).output_rows;
    }
    FtPlanEnumerator enumerator(context, options);
    XDBFT_ASSIGN_OR_RETURN(FtPlanChoice choice,
                           enumerator.FindBest(hybrid));
    const bool materialize = choice.config.materialized(id);
    result.config.set_materialized(id, materialize);
    if (materialize != static_choice.config.materialized(id)) {
      ++result.decisions_changed;
    }
    // Pin the decision.
    hybrid.mutable_node(id).constraint =
        materialize ? MatConstraint::kAlwaysMaterialize
                    : MatConstraint::kNeverMaterialize;
  }
  XDBFT_RETURN_NOT_OK(result.config.Validate(truth));
  return result;
}

namespace {

uint64_t HashWord(uint64_t h, uint64_t w) {
  uint64_t s = h ^ (w + 0x9e3779b97f4a7c15ULL);
  return SplitMix64(s);
}

uint64_t DoubleBits(double v) {
  if (v == 0.0) v = 0.0;  // canonicalize -0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Structural identity of every operator: a bottom-up hash over the
/// operator's kind, statistics, constraint and the hashes of its inputs
/// (in input order). Ids and labels are deliberately excluded, so the
/// identity survives renumbering/relabeling of isomorphic plans.
std::vector<uint64_t> StructuralHashes(const Plan& plan) {
  std::vector<uint64_t> h(plan.num_nodes(), 0);
  // Plan ids are topological (inputs have smaller ids), so one ascending
  // pass sees every input hash before it is consumed.
  for (const auto& n : plan.nodes()) {
    uint64_t x = HashWord(0, static_cast<uint64_t>(n.type));
    x = HashWord(x, static_cast<uint64_t>(n.constraint));
    x = HashWord(x, DoubleBits(n.runtime_cost));
    x = HashWord(x, DoubleBits(n.materialize_cost));
    x = HashWord(x, DoubleBits(n.output_rows));
    x = HashWord(x, DoubleBits(n.row_width_bytes));
    x = HashWord(x, static_cast<uint64_t>(n.inputs.size()));
    for (OpId in : n.inputs) {
      x = HashWord(x, h[static_cast<size_t>(in)]);
    }
    h[static_cast<size_t>(n.id)] = x;
  }
  return h;
}

}  // namespace

Plan PerturbStatistics(const Plan& plan, double max_factor, uint64_t seed) {
  Plan out = plan;
  const double span = std::log(std::max(max_factor, 1.0));
  // Per-operator independent draw keyed on (seed, structural identity):
  // no shared generator, so the factors do not depend on the order the
  // operators are visited in or on how the plan is labeled/numbered.
  const std::vector<uint64_t> identity = StructuralHashes(plan);
  for (const auto& n : out.nodes()) {
    auto& node = out.mutable_node(n.id);
    Rng rng(HashWord(identity[static_cast<size_t>(n.id)], seed));
    const double f = std::exp((rng.NextDouble() * 2.0 - 1.0) * span);
    const double g = std::exp((rng.NextDouble() * 2.0 - 1.0) * span);
    node.runtime_cost *= f;
    node.materialize_cost *= g;
  }
  return out;
}

namespace {

/// |a - b| / max(a, b) for non-negative rates; 0 when both are 0.
double RateDrift(double rate_a, double rate_b) {
  const double hi = std::max(rate_a, rate_b);
  if (!(hi > 0.0)) return 0.0;
  return std::abs(rate_a - rate_b) / hi;
}

}  // namespace

double ClusterDrift(const cost::ClusterStats& assumed,
                    const cost::ClusterStats& observed) {
  const double independent = RateDrift(
      assumed.mtbf_seconds > 0.0 ? 1.0 / assumed.mtbf_seconds : 0.0,
      observed.mtbf_seconds > 0.0 ? 1.0 / observed.mtbf_seconds : 0.0);
  const double burst = RateDrift(
      assumed.burst_mtbf_seconds > 0.0 ? 1.0 / assumed.burst_mtbf_seconds
                                       : 0.0,
      observed.burst_mtbf_seconds > 0.0 ? 1.0 / observed.burst_mtbf_seconds
                                        : 0.0);
  return std::max(independent, burst);
}

Result<DriftReoptimization> ReoptimizeOnDrift(
    const Plan& plan, const MaterializationConfig& current_config,
    const std::vector<bool>& completed, const FtCostContext& assumed,
    const cost::ClusterStats& observed, double drift_threshold,
    const EnumerationOptions& options) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(current_config.Validate(plan));
  XDBFT_RETURN_NOT_OK(observed.Validate());
  if (completed.size() != plan.num_nodes()) {
    return Status::InvalidArgument(
        "completed flags must cover every operator");
  }

  DriftReoptimization result;
  result.config = current_config;
  result.drift = ClusterDrift(assumed.cluster, observed);
  if (!(result.drift > drift_threshold)) return result;

  // Pin completed operators to their in-flight decision — their outputs
  // already exist (or were already skipped); only the future is open.
  Plan pinned = plan;
  for (const auto& n : plan.nodes()) {
    if (!completed[static_cast<size_t>(n.id)] || !n.is_free()) continue;
    const bool sink = plan.Consumers(n.id).empty();
    if (sink) continue;  // sinks are forced materialized anyway
    pinned.mutable_node(n.id).constraint =
        current_config.materialized(n.id) ? MatConstraint::kAlwaysMaterialize
                                          : MatConstraint::kNeverMaterialize;
  }

  FtCostContext recontext = assumed;
  recontext.cluster = observed;
  FtPlanEnumerator enumerator(recontext, options);
  XDBFT_ASSIGN_OR_RETURN(FtPlanChoice choice, enumerator.FindBest(pinned));

  result.reoptimized = true;
  for (OpId id : EnumerableOperators(pinned)) {
    if (choice.config.materialized(id) != current_config.materialized(id)) {
      ++result.decisions_changed;
    }
  }
  result.config = std::move(choice.config);
  XDBFT_RETURN_NOT_OK(result.config.Validate(plan));
  return result;
}

}  // namespace xdbft::ft
