#include "ft/adaptive.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace xdbft::ft {

using plan::MatConstraint;
using plan::OpId;
using plan::Plan;

namespace {

Status CheckStructurallyIdentical(const Plan& a, const Plan& b) {
  if (a.num_nodes() != b.num_nodes()) {
    return Status::InvalidArgument("plans differ in operator count");
  }
  for (const auto& n : a.nodes()) {
    const auto& m = b.node(n.id);
    if (n.inputs != m.inputs || n.constraint != m.constraint) {
      return Status::InvalidArgument(
          StrFormat("plans differ structurally at operator %d", n.id));
    }
  }
  return Status::OK();
}

}  // namespace

Result<AdaptiveResult> AdaptiveMaterialization(
    const Plan& estimated, const Plan& truth, const FtCostContext& context,
    const EnumerationOptions& options) {
  XDBFT_RETURN_NOT_OK(estimated.Validate());
  XDBFT_RETURN_NOT_OK(truth.Validate());
  XDBFT_RETURN_NOT_OK(CheckStructurallyIdentical(estimated, truth));

  // The static baseline the adaptive pass is compared against.
  FtPlanEnumerator static_enum(context, options);
  XDBFT_ASSIGN_OR_RETURN(FtPlanChoice static_choice,
                         static_enum.FindBest(estimated));

  // hybrid: true statistics for operators that have already executed,
  // estimates for the rest. Decisions made so far are pinned via
  // constraints so later re-optimizations cannot retract them.
  Plan hybrid = estimated;
  AdaptiveResult result;
  result.config = MaterializationConfig::NoMat(estimated);

  for (OpId id : EnumerableOperators(estimated)) {
    // Everything topologically before `id` has executed by the time its
    // materialization decision is due, and `id`'s own input cardinalities
    // are then exactly known — so its own cost re-estimate is accurate
    // too. Reveal true statistics up to and including `id`.
    for (OpId done = 0; done <= id; ++done) {
      hybrid.mutable_node(done).runtime_cost =
          truth.node(done).runtime_cost;
      hybrid.mutable_node(done).materialize_cost =
          truth.node(done).materialize_cost;
      hybrid.mutable_node(done).output_rows = truth.node(done).output_rows;
    }
    FtPlanEnumerator enumerator(context, options);
    XDBFT_ASSIGN_OR_RETURN(FtPlanChoice choice,
                           enumerator.FindBest(hybrid));
    const bool materialize = choice.config.materialized(id);
    result.config.set_materialized(id, materialize);
    if (materialize != static_choice.config.materialized(id)) {
      ++result.decisions_changed;
    }
    // Pin the decision.
    hybrid.mutable_node(id).constraint =
        materialize ? MatConstraint::kAlwaysMaterialize
                    : MatConstraint::kNeverMaterialize;
  }
  XDBFT_RETURN_NOT_OK(result.config.Validate(truth));
  return result;
}

Plan PerturbStatistics(const Plan& plan, double max_factor, uint64_t seed) {
  Plan out = plan;
  Rng rng(seed);
  const double span = std::log(std::max(max_factor, 1.0));
  for (const auto& n : out.nodes()) {
    auto& node = out.mutable_node(n.id);
    const double f = std::exp((rng.NextDouble() * 2.0 - 1.0) * span);
    const double g = std::exp((rng.NextDouble() * 2.0 - 1.0) * span);
    node.runtime_cost *= f;
    node.materialize_cost *= g;
  }
  return out;
}

}  // namespace xdbft::ft
