#include "ft/enumerator.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace xdbft::ft {

using plan::Plan;

std::string EnumerationStats::ToString() const {
  return StrFormat(
      "EnumerationStats(plans=%llu, ft_plans=%llu/%llu, rule1_marked=%llu, "
      "rule2_marked=%llu, rule3_stops=%llu [RPt=%llu TPt=%llu memo=%llu/%llu], "
      "paths=%llu evaluated, %llu skipped)",
      static_cast<unsigned long long>(candidate_plans),
      static_cast<unsigned long long>(ft_plans_enumerated),
      static_cast<unsigned long long>(total_ft_plans_unpruned),
      static_cast<unsigned long long>(rule1_ops_marked),
      static_cast<unsigned long long>(rule2_ops_marked),
      static_cast<unsigned long long>(rule3_early_stops),
      static_cast<unsigned long long>(rule3_rpt_hits),
      static_cast<unsigned long long>(rule3_tpt_hits),
      static_cast<unsigned long long>(rule3_memo_hits),
      static_cast<unsigned long long>(rule3_memo_misses),
      static_cast<unsigned long long>(paths_evaluated),
      static_cast<unsigned long long>(rule3_paths_skipped));
}

Result<FtPlanChoice> FtPlanEnumerator::FindBest(
    const std::vector<Plan>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate plans");
  }
  XDBFT_RETURN_NOT_OK(model_.context().Validate());
  XDBFT_SCOPED_TIMER_GAUGE("enumerator.seconds.find_best");
  stats_ = EnumerationStats{};
  stats_.candidate_plans = candidates.size();

  const double pipe = model_.context().model.pipe_constant;
  const FailureParams fparams = model_.context().MakeFailureParams();

  double best_cost = std::numeric_limits<double>::infinity();
  FtPlanChoice best;
  bool found = false;
  DominantPathMemo memo;

  for (size_t pi = 0; pi < candidates.size(); ++pi) {
    Plan plan = candidates[pi];  // copy: rules 1-2 mutate constraints
    XDBFT_RETURN_NOT_OK(plan.Validate());

    const size_t free_before = EnumerableOperators(plan).size();
    if (free_before > 62) {
      return Status::InvalidArgument("plan has too many free operators");
    }
    stats_.total_ft_plans_unpruned += uint64_t{1} << free_before;

    {
      XDBFT_SCOPED_TIMER_GAUGE("enumerator.seconds.prepass");
      // Rule 2 runs first: it only consults the operator's own collapsed
      // runtime, while rule 1 quantifies over a parent's *still-free*
      // children — operators rule 2 already marked drop out of that
      // quantifier, so this order marks a superset of (never fewer ops
      // than) the reverse order. Both rules only add kNeverMaterialize
      // constraints that are provably cost-safe, so more is better.
      if (options_.pruning.rule2) {
        stats_.rule2_ops_marked += static_cast<uint64_t>(
            ApplyPruningRule2(&plan, model_.context()));
      }
      if (options_.pruning.rule1) {
        stats_.rule1_ops_marked +=
            static_cast<uint64_t>(ApplyPruningRule1(&plan, pipe));
      }
    }

    const std::vector<plan::OpId> free_ops = EnumerableOperators(plan);
    if (static_cast<int>(free_ops.size()) > options_.max_free_operators) {
      return Status::InvalidArgument(StrFormat(
          "plan %zu has %zu free operators after pruning (max %d); raise "
          "EnumerationOptions::max_free_operators or add constraints",
          pi, free_ops.size(), options_.max_free_operators));
    }
    const uint64_t num_configs = uint64_t{1} << free_ops.size();
    stats_.ft_plans_enumerated += num_configs;

    for (uint64_t mask = 0; mask < num_configs; ++mask) {
      const MaterializationConfig config =
          MaterializationConfig::FromFreeMask(plan, mask);
      XDBFT_ASSIGN_OR_RETURN(CollapsedPlan cp,
                             CollapsedPlan::Create(plan, config, pipe));

      // Path enumeration with rule-3 early stopping (Listing 1 lines 9-13
      // plus §4.3). If any path's cost reaches bestT, this FT plan's
      // dominant path cannot beat bestT and the remaining paths are
      // skipped.
      double dom_cost = 0.0;
      CollapsedPath dom_path;
      bool pruned = false;
      const size_t total_paths =
          options_.pruning.rule3 ? cp.CountPaths() : 0;
      const size_t visited = cp.ForEachPath([&](const CollapsedPath& path) {
        if (options_.pruning.rule3) {
          // Test 1: RPt >= bestT — no cost-model call needed.
          const double rpt = cp.PathRuntimeNoFailure(path);
          if (rpt >= best_cost) {
            ++stats_.rule3_rpt_hits;
            pruned = true;
            return false;
          }
          // Extension: Eq. 9 dominance over a memoized dominant path.
          if (options_.pruning.memoize_dominant_paths && !memo.empty()) {
            std::vector<double> costs;
            costs.reserve(path.size());
            for (CollapsedId id : path) costs.push_back(cp.op(id).total_cost());
            if (memo.Dominates(std::move(costs))) {
              ++stats_.rule3_memo_hits;
              pruned = true;
              return false;
            }
            ++stats_.rule3_memo_misses;
          }
        }
        ++stats_.paths_evaluated;
        double tpt = 0.0;
        for (CollapsedId id : path) {
          tpt += OperatorTotalRuntime(cp.op(id).total_cost(), fparams);
        }
        if (options_.pruning.rule3 && tpt >= best_cost) {
          // Test 2: TPt >= bestT.
          ++stats_.rule3_tpt_hits;
          pruned = true;
          return false;
        }
        if (tpt > dom_cost) {
          dom_cost = tpt;
          dom_path = path;
        }
        return true;
      });
      if (pruned) {
        ++stats_.rule3_rejections;
        // Only count as an early stop if remaining paths were actually
        // skipped; firing on the last path saves nothing (§5.5).
        if (visited < total_paths) {
          ++stats_.rule3_early_stops;
          stats_.rule3_paths_skipped +=
              static_cast<uint64_t>(total_paths - visited);
        }
        continue;
      }
      if (dom_path.empty()) {
        return Status::Internal("collapsed plan produced no paths");
      }
      if (dom_cost < best_cost) {
        best_cost = dom_cost;
        best.plan_index = pi;
        best.plan = plan;
        best.config = config;
        best.estimated_cost = dom_cost;
        best.dominant_path = dom_path;
        found = true;
        if (options_.pruning.rule3 &&
            options_.pruning.memoize_dominant_paths) {
          std::vector<double> costs;
          costs.reserve(dom_path.size());
          for (CollapsedId id : dom_path) {
            costs.push_back(cp.op(id).total_cost());
          }
          memo.Record(std::move(costs), dom_cost);
        }
      }
    }
  }
  // Publish this run's counters (rules 1/2 are published at the marking
  // site in pruning.cc; everything else is accounted here).
  XDBFT_COUNTER_ADD("enumerator.plans", stats_.candidate_plans);
  XDBFT_COUNTER_ADD("enumerator.configs_unpruned",
                    stats_.total_ft_plans_unpruned);
  XDBFT_COUNTER_ADD("enumerator.configs_enumerated",
                    stats_.ft_plans_enumerated);
  XDBFT_COUNTER_ADD("enumerator.pruned_rule3", stats_.rule3_rejections);
  XDBFT_COUNTER_ADD("enumerator.rule3_paths_skipped",
                    stats_.rule3_paths_skipped);
  XDBFT_COUNTER_ADD("enumerator.memo_hits", stats_.rule3_memo_hits);
  XDBFT_COUNTER_ADD("enumerator.memo_misses", stats_.rule3_memo_misses);
  XDBFT_COUNTER_ADD("enumerator.paths_evaluated", stats_.paths_evaluated);
  if (!found) {
    return Status::Internal("enumeration found no fault-tolerant plan");
  }
  return best;
}

Result<FtPlanChoice> FtPlanEnumerator::FindBest(const Plan& plan) {
  return FindBest(std::vector<Plan>{plan});
}

Result<std::vector<std::pair<MaterializationConfig, double>>>
FtPlanEnumerator::EnumerateAll(const Plan& plan) const {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(model_.context().Validate());
  const std::vector<plan::OpId> free_ops = EnumerableOperators(plan);
  if (free_ops.size() > 20) {
    return Status::InvalidArgument(
        "EnumerateAll supports at most 20 free operators");
  }
  std::vector<std::pair<MaterializationConfig, double>> out;
  const uint64_t num_configs = uint64_t{1} << free_ops.size();
  out.reserve(num_configs);
  for (uint64_t mask = 0; mask < num_configs; ++mask) {
    const MaterializationConfig config =
        MaterializationConfig::FromFreeMask(plan, mask);
    XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est,
                           model_.Estimate(plan, config));
    out.emplace_back(config, est.dominant_cost);
  }
  return out;
}

}  // namespace xdbft::ft
