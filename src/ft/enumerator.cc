#include "ft/enumerator.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <tuple>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xdbft::ft {

using plan::Plan;

namespace {

/// Lower an atomic double to `v` if `v` is smaller (lock-free min).
void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Status EnumerationOptions::Validate() const {
  if (max_free_operators < 0 || max_free_operators > 62) {
    return Status::InvalidArgument(
        "max_free_operators must be in [0, 62] (configuration masks are "
        "64-bit)");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = hardware concurrency)");
  }
  return Status::OK();
}

void EnumerationStats::MergeFrom(const EnumerationStats& other) {
  candidate_plans += other.candidate_plans;
  total_ft_plans_unpruned += other.total_ft_plans_unpruned;
  ft_plans_enumerated += other.ft_plans_enumerated;
  rule1_ops_marked += other.rule1_ops_marked;
  rule2_ops_marked += other.rule2_ops_marked;
  rule3_early_stops += other.rule3_early_stops;
  rule3_rejections += other.rule3_rejections;
  rule3_rpt_hits += other.rule3_rpt_hits;
  rule3_tpt_hits += other.rule3_tpt_hits;
  rule3_memo_hits += other.rule3_memo_hits;
  rule3_memo_misses += other.rule3_memo_misses;
  paths_evaluated += other.paths_evaluated;
  rule3_paths_skipped += other.rule3_paths_skipped;
  tasks_executed += other.tasks_executed;
  tasks_stolen += other.tasks_stolen;
}

std::string EnumerationStats::ToString() const {
  return StrFormat(
      "EnumerationStats(plans=%llu, ft_plans=%llu/%llu, rule1_marked=%llu, "
      "rule2_marked=%llu, rule3_stops=%llu [RPt=%llu TPt=%llu memo=%llu/%llu], "
      "paths=%llu evaluated, %llu skipped, tasks=%llu (%llu stolen))",
      static_cast<unsigned long long>(candidate_plans),
      static_cast<unsigned long long>(ft_plans_enumerated),
      static_cast<unsigned long long>(total_ft_plans_unpruned),
      static_cast<unsigned long long>(rule1_ops_marked),
      static_cast<unsigned long long>(rule2_ops_marked),
      static_cast<unsigned long long>(rule3_early_stops),
      static_cast<unsigned long long>(rule3_rpt_hits),
      static_cast<unsigned long long>(rule3_tpt_hits),
      static_cast<unsigned long long>(rule3_memo_hits),
      static_cast<unsigned long long>(rule3_memo_misses),
      static_cast<unsigned long long>(paths_evaluated),
      static_cast<unsigned long long>(rule3_paths_skipped),
      static_cast<unsigned long long>(tasks_executed),
      static_cast<unsigned long long>(tasks_stolen));
}

int FtPlanEnumerator::ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

/// One candidate after the rules-1/2 pre-pass. The deterministic counters
/// (space sizes, per-rule marks) are computed here, per plan, so their
/// totals are exact regardless of how the evaluation work is scheduled.
struct FtPlanEnumerator::PreparedPlan {
  Plan plan;
  std::vector<plan::OpId> free_ops;
  uint64_t num_configs = 0;
  uint64_t unpruned = 0;
  uint64_t rule1_marked = 0;
  uint64_t rule2_marked = 0;
  Status status;  // OK unless this candidate is rejected
};

/// State shared by every enumeration task of one FindBest call.
struct FtPlanEnumerator::SearchState {
  /// Rule-3 cost bound (bestT). Monotonically non-increasing; stale reads
  /// only weaken pruning, never correctness. Pruning tests are strict
  /// (cost > bound), so a configuration tying the final best always
  /// survives to the deterministic tie-break below.
  std::atomic<double> bound{std::numeric_limits<double>::infinity()};
  ConcurrentDominantPathMemo owned_memo;
  /// Points at owned_memo, or at EnumerationOptions::shared_memo when the
  /// caller warm-starts rule 3 across FindBest calls of the same search.
  ConcurrentDominantPathMemo* memo = nullptr;
  std::atomic<bool> failed{false};
  const FailureParams fparams;
  /// Placement dimensions; `placed` caches pparams.active(). When false
  /// the search takes the historical scalar path — bit-identical to the
  /// pre-placement enumerator.
  const PlacementParams pparams;
  /// Write-ahead-lineage dimensions; disabled keeps every per-operator
  /// cost bit-identical to the recompute-from-inputs model.
  const WalParams wal;
  const bool placed;
  const bool use_memo;

  std::mutex mu;  // guards the candidate + error fields
  bool found = false;
  double best_cost = std::numeric_limits<double>::infinity();
  size_t best_plan = 0;
  uint64_t best_mask = 0;
  bool has_error = false;
  size_t error_plan = 0;
  uint64_t error_mask = 0;
  Status error;

  SearchState(FailureParams fp, PlacementParams pp, WalParams wp,
              bool memoize)
      : fparams(fp),
        pparams(pp),
        wal(wp),
        placed(pp.active()),
        use_memo(memoize) {}

  /// Keep the error with the smallest (plan, mask) key so the reported
  /// failure does not depend on task interleaving.
  void RecordError(size_t plan_index, uint64_t mask, Status s) {
    std::lock_guard<std::mutex> lock(mu);
    if (!has_error || std::tie(plan_index, mask) <
                          std::tie(error_plan, error_mask)) {
      has_error = true;
      error_plan = plan_index;
      error_mask = mask;
      error = std::move(s);
    }
    failed.store(true, std::memory_order_relaxed);
  }
};

FtPlanEnumerator::PreparedPlan FtPlanEnumerator::Prepare(
    const Plan& candidate, size_t plan_index) const {
  PreparedPlan out;
  out.plan = candidate;  // copy: rules 1-2 mutate constraints
  out.status = out.plan.Validate();
  if (!out.status.ok()) return out;

  const size_t free_before = EnumerableOperators(out.plan).size();
  if (free_before > 62) {
    out.status = Status::InvalidArgument("plan has too many free operators");
    return out;
  }
  out.unpruned = uint64_t{1} << free_before;

  {
    XDBFT_SCOPED_TIMER_GAUGE("enumerator.seconds.prepass");
    // Rule 2 runs first: it only consults the operator's own collapsed
    // runtime, while rule 1 quantifies over a parent's *still-free*
    // children — operators rule 2 already marked drop out of that
    // quantifier, so this order marks a superset of (never fewer ops
    // than) the reverse order. Both rules only add kNeverMaterialize
    // constraints that are provably cost-safe, so more is better.
    // Rules 1-2 are proven cost-safe for recompute-from-inputs recovery
    // only: under write-ahead lineage a skipped materialization also
    // changes the log-write volume, which their proofs do not account for.
    // WAL-enabled searches keep rule 3 (exact branch-and-bound) and skip
    // the static marks.
    const bool static_rules_safe = !model_.context().model.wal_enabled;
    if (options_.pruning.rule2 && static_rules_safe) {
      out.rule2_marked = static_cast<uint64_t>(
          ApplyPruningRule2(&out.plan, model_.context()));
    }
    if (options_.pruning.rule1 && static_rules_safe) {
      out.rule1_marked = static_cast<uint64_t>(ApplyPruningRule1(
          &out.plan, model_.context().model.pipe_constant));
    }
  }

  out.free_ops = EnumerableOperators(out.plan);
  if (static_cast<int>(out.free_ops.size()) > options_.max_free_operators) {
    out.status = Status::InvalidArgument(StrFormat(
        "plan %zu has %zu free operators after pruning (max %d); raise "
        "EnumerationOptions::max_free_operators or add constraints",
        plan_index, out.free_ops.size(), options_.max_free_operators));
    return out;
  }
  out.num_configs = uint64_t{1} << out.free_ops.size();
  return out;
}

void FtPlanEnumerator::EvaluateMaskRange(const PreparedPlan& prepared,
                                         const MaskRange& range,
                                         SearchState* state,
                                         EnumerationStats* local) const {
  const double pipe = model_.context().model.pipe_constant;
  const bool rule3 = options_.pruning.rule3;
  for (uint64_t mask = range.lo; mask < range.hi; ++mask) {
    if (state->failed.load(std::memory_order_relaxed)) return;
    const MaterializationConfig config =
        MaterializationConfig::FromFreeMask(prepared.plan, mask);
    auto collapsed = CollapsedPlan::Create(prepared.plan, config, pipe);
    if (!collapsed.ok()) {
      state->RecordError(range.plan_index, mask, collapsed.status());
      return;
    }
    const CollapsedPlan& cp = *collapsed;

    // Placement pass (correlated-failure extension): deterministic greedy
    // group assignment per configuration; inactive (the common case)
    // keeps the historical scalar arithmetic bit-for-bit.
    PlacementResult placement;
    if (state->placed) {
      placement = ComputePlacement(cp, state->pparams, state->fparams,
                                   state->wal);
    }
    const auto placed_t = [&](CollapsedId id) {
      return state->placed ? placement.placed_cost[static_cast<size_t>(id)]
                           : cp.op(id).total_cost();
    };
    const auto refetch = [&](CollapsedId id) {
      return state->placed ? placement.refetch_cost[static_cast<size_t>(id)]
                           : 0.0;
    };
    // Durable runtime: placed runtime plus the WAL log-write overhead.
    // This is the t the rule-3 bounds and the memo must see — per-op TPt
    // is monotone in it, which placed_t alone does not guarantee once
    // lineage volume varies per configuration.
    const auto durable_t = [&](CollapsedId id) {
      double t = placed_t(id);
      if (state->wal.enabled) {
        t += state->wal.write_cost * cp.op(id).lineage_volume;
      }
      return t;
    };

    // Path enumeration with rule-3 early stopping (Listing 1 lines 9-13
    // plus §4.3). Every test is strict (> bound, strict Eq. 9 dominance):
    // a pruned configuration provably costs more than bestT, so a
    // configuration tying the final best is never eliminated and the
    // (cost, plan, mask) tie-break stays exact at any thread count.
    double dom_cost = 0.0;
    CollapsedPath dom_path;
    bool pruned = false;
    const size_t total_paths = rule3 ? cp.CountPaths() : 0;
    const size_t visited = cp.ForEachPath([&](const CollapsedPath& path) {
      const double bound = state->bound.load(std::memory_order_relaxed);
      if (rule3) {
        // Test 1: RPt > bestT — no cost-model call needed. Placed runtime
        // (remote reads included) is still a lower bound on TPt.
        double rpt = 0.0;
        if (state->placed || state->wal.enabled) {
          for (CollapsedId id : path) rpt += durable_t(id);
        } else {
          rpt = cp.PathRuntimeNoFailure(path);
        }
        if (rpt > bound) {
          ++local->rule3_rpt_hits;
          pruned = true;
          return false;
        }
        // Extension: Eq. 9 dominance over a memoized dominant path, in
        // both cost dimensions (placed runtime, per-attempt refetch).
        if (state->use_memo && !state->memo->empty()) {
          std::vector<PathOpCost> costs;
          costs.reserve(path.size());
          for (CollapsedId id : path) {
            costs.push_back(PathOpCost{durable_t(id), refetch(id)});
          }
          if (state->memo->Dominates(std::move(costs))) {
            ++local->rule3_memo_hits;
            pruned = true;
            return false;
          }
          ++local->rule3_memo_misses;
        }
      }
      ++local->paths_evaluated;
      double tpt = 0.0;
      for (CollapsedId id : path) {
        tpt += CollapsedOpTotalRuntime(placed_t(id),
                                       cp.op(id).lineage_volume,
                                       state->fparams, state->wal,
                                       refetch(id));
      }
      if (rule3 && tpt > bound) {
        // Test 2: TPt > bestT.
        ++local->rule3_tpt_hits;
        pruned = true;
        return false;
      }
      if (tpt > dom_cost) {
        dom_cost = tpt;
        dom_path = path;
      }
      return true;
    });
    if (pruned) {
      ++local->rule3_rejections;
      // Only count as an early stop if remaining paths were actually
      // skipped; firing on the last path saves nothing (§5.5).
      if (visited < total_paths) {
        ++local->rule3_early_stops;
        local->rule3_paths_skipped +=
            static_cast<uint64_t>(total_paths - visited);
      }
      continue;
    }
    if (dom_path.empty()) {
      state->RecordError(range.plan_index, mask,
                         Status::Internal("collapsed plan produced no paths"));
      return;
    }

    // Deterministic acceptance: strictly smaller (cost, plan, mask) wins.
    const size_t plan_index = range.plan_index;
    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->found ||
          std::tie(dom_cost, plan_index, mask) <
              std::tie(state->best_cost, state->best_plan,
                       state->best_mask)) {
        state->found = true;
        state->best_cost = dom_cost;
        state->best_plan = plan_index;
        state->best_mask = mask;
        accepted = true;
      }
    }
    if (accepted) {
      AtomicMin(&state->bound, dom_cost);
      if (rule3 && state->use_memo) {
        std::vector<PathOpCost> costs;
        costs.reserve(dom_path.size());
        for (CollapsedId id : dom_path) {
          costs.push_back(PathOpCost{durable_t(id), refetch(id)});
        }
        state->memo->Record(std::move(costs), dom_cost);
      }
    }
  }
}

Result<FtPlanChoice> FtPlanEnumerator::FindBest(
    const std::vector<Plan>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate plans");
  }
  XDBFT_RETURN_NOT_OK(model_.context().Validate());
  XDBFT_RETURN_NOT_OK(options_.Validate());
  XDBFT_SCOPED_TIMER_GAUGE("enumerator.seconds.find_best");
  stats_ = EnumerationStats{};
  stats_.candidate_plans = candidates.size();

  const int threads = ResolveThreads(options_.num_threads);
  const bool parallel = threads > 1;
  if (parallel && (pool_ == nullptr || pool_->num_threads() != threads)) {
    pool_ = std::make_unique<TaskPool>(threads);
  }
  const TaskPoolStats pool_before =
      pool_ != nullptr ? pool_->stats() : TaskPoolStats{};
  obs::TraceRecorder* trace = options_.trace;
  if (trace != nullptr) {
    for (int t = 0; t < threads; ++t) {
      trace->SetThreadName(options_.trace_pid, t,
                           "enum worker " + std::to_string(t));
    }
    trace->SetThreadName(options_.trace_pid, threads, "enum caller");
  }

  // Phase 1: rules-1/2 pre-pass, one independent task per candidate.
  const size_t num_plans = candidates.size();
  std::vector<PreparedPlan> prepared(num_plans);
  if (parallel) {
    pool_->ParallelForEach(num_plans, [&](size_t i) {
      prepared[i] = Prepare(candidates[i], i);
    });
  } else {
    for (size_t i = 0; i < num_plans; ++i) {
      prepared[i] = Prepare(candidates[i], i);
    }
  }
  // Accumulate the deterministic counters in plan order; report the first
  // rejected candidate exactly like the sequential walk would.
  for (size_t i = 0; i < num_plans; ++i) {
    if (!prepared[i].status.ok()) return prepared[i].status;
    stats_.total_ft_plans_unpruned += prepared[i].unpruned;
    stats_.rule1_ops_marked += prepared[i].rule1_marked;
    stats_.rule2_ops_marked += prepared[i].rule2_marked;
    stats_.ft_plans_enumerated += prepared[i].num_configs;
  }

  // Phase 2: carve the configuration space into contiguous mask ranges —
  // within-plan subtrees of the enumeration — sized for ~8 tasks per
  // worker so stealing can rebalance skew from pruning.
  uint64_t total_configs = 0;
  for (const PreparedPlan& pp : prepared) total_configs += pp.num_configs;
  const uint64_t target_tasks =
      parallel ? static_cast<uint64_t>(threads) * 8 : 1;
  const uint64_t masks_per_task =
      std::max<uint64_t>(1, total_configs / std::max<uint64_t>(
                                                1, target_tasks));
  std::vector<MaskRange> tasks;
  for (size_t pi = 0; pi < num_plans; ++pi) {
    for (uint64_t lo = 0; lo < prepared[pi].num_configs;
         lo += masks_per_task) {
      tasks.push_back(MaskRange{
          pi, lo, std::min(prepared[pi].num_configs, lo + masks_per_task)});
    }
  }

  // Phase 3: evaluate. Each worker slot owns one stats accumulator
  // (single-writer); the slots are merged below — the per-thread snapshot
  // merge that keeps the totals exact under concurrency.
  SearchState state(model_.context().MakeFailureParams(),
                    model_.context().MakePlacementParams(),
                    model_.context().MakeWalParams(),
                    options_.pruning.memoize_dominant_paths);
  state.memo = options_.shared_memo != nullptr ? options_.shared_memo
                                               : &state.owned_memo;
  std::vector<EnumerationStats> per_slot(static_cast<size_t>(threads) + 1);
  if (parallel) {
    pool_->ParallelForEach(tasks.size(), [&](size_t i) {
      const int worker = pool_->CurrentWorkerId();
      const size_t slot =
          worker >= 0 ? static_cast<size_t>(worker)
                      : static_cast<size_t>(threads);  // helping caller
      const double ts = trace != nullptr ? trace->NowMicros() : 0.0;
      EvaluateMaskRange(prepared[tasks[i].plan_index], tasks[i], &state,
                        &per_slot[slot]);
      if (trace != nullptr) {
        trace->AddComplete(
            "enum.chunk", "enumerator", ts, trace->NowMicros() - ts,
            options_.trace_pid, static_cast<int>(slot),
            {obs::IntArg("plan", static_cast<int64_t>(tasks[i].plan_index)),
             obs::IntArg("mask_lo", static_cast<int64_t>(tasks[i].lo)),
             obs::IntArg("mask_hi", static_cast<int64_t>(tasks[i].hi))});
      }
    });
  } else {
    for (const MaskRange& task : tasks) {
      EvaluateMaskRange(prepared[task.plan_index], task, &state,
                        &per_slot[0]);
    }
  }
  for (const EnumerationStats& slot : per_slot) stats_.MergeFrom(slot);
  stats_.tasks_executed += tasks.size();
  if (pool_ != nullptr) {
    stats_.tasks_stolen +=
        pool_->stats().tasks_stolen - pool_before.tasks_stolen;
  }

  // Publish this run's counters (rules 1/2 are published at the marking
  // site in pruning.cc; everything else is accounted here).
  XDBFT_COUNTER_ADD("enumerator.plans", stats_.candidate_plans);
  XDBFT_COUNTER_ADD("enumerator.configs_unpruned",
                    stats_.total_ft_plans_unpruned);
  XDBFT_COUNTER_ADD("enumerator.configs_enumerated",
                    stats_.ft_plans_enumerated);
  XDBFT_COUNTER_ADD("enumerator.pruned_rule3", stats_.rule3_rejections);
  XDBFT_COUNTER_ADD("enumerator.rule3_paths_skipped",
                    stats_.rule3_paths_skipped);
  XDBFT_COUNTER_ADD("enumerator.memo_hits", stats_.rule3_memo_hits);
  XDBFT_COUNTER_ADD("enumerator.memo_misses", stats_.rule3_memo_misses);
  XDBFT_COUNTER_ADD("enumerator.paths_evaluated", stats_.paths_evaluated);
  XDBFT_COUNTER_ADD("enumerator.tasks", stats_.tasks_executed);
  XDBFT_COUNTER_ADD("enumerator.tasks_stolen", stats_.tasks_stolen);
  XDBFT_GAUGE_SET("enumerator.threads", threads);

  if (state.has_error) return state.error;
  if (!state.found) {
    return Status::Internal("enumeration found no fault-tolerant plan");
  }

  // Reconstruct the winner from its (plan, mask) id — cheaper than
  // copying plan + path under the candidate lock on every improvement,
  // and exactly reproducible.
  const PreparedPlan& wp = prepared[state.best_plan];
  FtPlanChoice best;
  best.plan_index = state.best_plan;
  best.plan = wp.plan;
  best.config = MaterializationConfig::FromFreeMask(wp.plan, state.best_mask);
  best.estimated_cost = state.best_cost;
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(wp.plan, best.config,
                            model_.context().model.pipe_constant));
  PlacementResult placement;
  if (state.placed) {
    placement = ComputePlacement(cp, state.pparams, state.fparams,
                                 state.wal);
    best.placement_groups = placement.groups;
  }
  double dom_cost = 0.0;
  cp.ForEachPath([&](const CollapsedPath& path) {
    double tpt = 0.0;
    for (CollapsedId id : path) {
      const size_t i = static_cast<size_t>(id);
      tpt += state.placed
                 ? CollapsedOpTotalRuntime(placement.placed_cost[i],
                                           cp.op(id).lineage_volume,
                                           state.fparams, state.wal,
                                           placement.refetch_cost[i])
                 : CollapsedOpTotalRuntime(cp.op(id).total_cost(),
                                           cp.op(id).lineage_volume,
                                           state.fparams, state.wal);
    }
    if (tpt > dom_cost) {
      dom_cost = tpt;
      best.dominant_path = path;
    }
    return true;
  });
  return best;
}

Result<FtPlanChoice> FtPlanEnumerator::FindBest(const Plan& plan) {
  return FindBest(std::vector<Plan>{plan});
}

Result<std::vector<std::pair<MaterializationConfig, double>>>
FtPlanEnumerator::EnumerateAll(const Plan& plan) const {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(model_.context().Validate());
  const std::vector<plan::OpId> free_ops = EnumerableOperators(plan);
  if (free_ops.size() > 20) {
    return Status::InvalidArgument(
        "EnumerateAll supports at most 20 free operators");
  }
  std::vector<std::pair<MaterializationConfig, double>> out;
  const uint64_t num_configs = uint64_t{1} << free_ops.size();
  out.reserve(num_configs);
  for (uint64_t mask = 0; mask < num_configs; ++mask) {
    const MaterializationConfig config =
        MaterializationConfig::FromFreeMask(plan, mask);
    XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est,
                           model_.Estimate(plan, config));
    out.emplace_back(config, est.dominant_cost);
  }
  return out;
}

}  // namespace xdbft::ft
