// MaterializationConfig: the set of m(o) flags for a plan (paper §2.1,
// "materialization configuration M_P").
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"

namespace xdbft::ft {

/// \brief m(o) for every operator of one plan.
///
/// Invariants (established by the factory functions and checked by
/// Validate): bound operators keep their forced value; sink operators are
/// always materialized (the query result must be produced).
class MaterializationConfig {
 public:
  MaterializationConfig() = default;
  explicit MaterializationConfig(size_t num_ops)
      : mat_(num_ops, false) {}

  size_t size() const { return mat_.size(); }
  bool materialized(plan::OpId id) const {
    return mat_[static_cast<size_t>(id)];
  }
  void set_materialized(plan::OpId id, bool m) {
    mat_[static_cast<size_t>(id)] = m;
  }

  /// \brief Number of materialized operators.
  size_t NumMaterialized() const;

  /// \brief Configuration with m(o)=0 for all free operators (bound and
  /// sink operators forced as required). The "no-mat" strategies.
  static MaterializationConfig NoMat(const plan::Plan& plan);

  /// \brief Configuration with m(o)=1 everywhere except operators bound to
  /// kNeverMaterialize. The "all-mat" (Hadoop-style) strategy.
  static MaterializationConfig AllMat(const plan::Plan& plan);

  /// \brief Configuration from a bitmask over the plan's *free, non-sink*
  /// operators in ascending id order (bit i == 1 -> materialize the i-th
  /// free operator). Used by the enumeration procedure; bound/sink
  /// operators are forced as required.
  static MaterializationConfig FromFreeMask(const plan::Plan& plan,
                                            uint64_t mask);

  /// \brief Check the invariants against `plan`.
  Status Validate(const plan::Plan& plan) const;

  /// \brief e.g. "{m: 3,5,6,7}".
  std::string ToString() const;

  bool operator==(const MaterializationConfig& other) const {
    return mat_ == other.mat_;
  }

 private:
  std::vector<bool> mat_;
};

/// \brief Free operators eligible for enumeration: free per f(o) and not a
/// sink (sinks are always materialized). Ascending id order; bit i of a
/// FromFreeMask mask refers to element i of this list.
std::vector<plan::OpId> EnumerableOperators(const plan::Plan& plan);

}  // namespace xdbft::ft
