// FtCostModel: estimates the total runtime of a fault-tolerant plan
// [P, M_P] under mid-query failures (paper §3.4-3.5): per-path cost TPt
// (Eq. 7-8) and the dominant (max-cost) execution path, whose runtime
// represents the whole plan.
#pragma once

#include <cmath>
#include <vector>

#include "common/result.h"
#include "cost/cost_params.h"
#include "ft/collapsed_plan.h"
#include "ft/failure_math.h"
#include "ft/mat_config.h"
#include "plan/plan.h"

namespace xdbft::ft {

/// \brief Placement dimensions of the cost model (correlated-failure
/// extension): how many shared-fate groups materialization points can be
/// placed on, what a cross-group read costs, and which share of failures
/// are correlated bursts (those also destroy co-placed materialized state).
struct PlacementParams {
  int num_groups = 1;
  /// Placed runtime grows by penalty * materialize_cost per input read
  /// from a different group.
  double remote_read_penalty = 0.0;
  /// rho = burst_hazard / total hazard, in [0, 1): fraction of an
  /// operator's failures that also wipe its co-placed materialized inputs,
  /// charging their re-fetch on every recovery attempt.
  double burst_failure_share = 0.0;

  /// \brief Placement affects costs only when there is more than one group
  /// or a correlated-failure share to price.
  bool active() const {
    return num_groups > 1 || burst_failure_share > 0.0;
  }
};

/// \brief Deterministic placement of a collapsed plan's operators onto
/// shared-fate groups, plus the per-operator placed costs.
struct PlacementResult {
  /// Placement group per CollapsedId (empty when placement is inactive).
  std::vector<int> groups;
  /// Placed runtime t_p(c) = t(c) + penalty * sum of remote input
  /// materialize costs, per CollapsedId.
  std::vector<double> placed_cost;
  /// Extra recovery charge per attempt: rho * sum of co-placed input
  /// materialize costs, per CollapsedId.
  std::vector<double> refetch_cost;
};

/// \brief Write-ahead-lineage dimensions of the cost model
/// (arXiv:2403.08062): when enabled, every collapsed operator logs the
/// lineage of its internal intermediates before results flow downstream
/// (runtime grows by write_cost * lineage_volume) and recovery replays from
/// the last logged frontier (only replay_factor of the wasted time is
/// re-paid per attempt). Disabled (the default) is bit-identical to the
/// paper's recompute-from-inputs model.
struct WalParams {
  bool enabled = false;
  double write_cost = 0.0;
  double replay_factor = 1.0;
};

/// \brief T(c) of one collapsed operator under the active recovery
/// discipline: plain Eq. 8 (`OperatorTotalRuntime`) when WAL is disabled,
/// the lineage-log variant (durable runtime + replay-discounted wasted
/// time) when enabled.
double CollapsedOpTotalRuntime(double t, double lineage_volume,
                               const FailureParams& fparams,
                               const WalParams& wal,
                               double extra_cost_per_attempt = 0.0);

/// \brief Greedily assign each collapsed operator (in ascending = topological
/// id order) to the group minimizing its T(c) given the already-placed
/// inputs; ties break toward the lowest group id. A pure function of
/// (cp, pparams, fparams, wal) — bit-identical at any thread count.
PlacementResult ComputePlacement(const CollapsedPlan& cp,
                                 const PlacementParams& pparams,
                                 const FailureParams& fparams,
                                 const WalParams& wal = {});

/// \brief Everything the cost function needs (paper: getCostStats output).
struct FtCostContext {
  cost::ClusterStats cluster;
  cost::CostModelParams model;

  /// \brief FailureParams in internal cost units.
  ///
  /// MTBF_cost is the *per-node* MTBF (scaled by CONST_cost): the paper's
  /// cost model tracks a single machine's timeline (§3.5 derives "the
  /// average cost for a single machine"; footnote 6 assumes machines are
  /// non-blocking, i.e. one machine can always move ahead). Under
  /// fine-grained recovery only the failed node's sub-plan restarts, so the
  /// per-node failure process is the right granularity; the S-percentile
  /// attempts bound absorbs part of the max-over-n-machines effect, and the
  /// residual is the mild underestimation the paper reports in Fig. 12a.
  FailureParams MakeFailureParams() const {
    FailureParams p;
    p.mtbf_cost = cluster.mtbf_seconds * model.cost_constant;
    p.mttr_cost = cluster.mttr_seconds * model.cost_constant;
    p.success_target = model.success_target;
    if (model.scale_success_target_with_cluster) {
      // All n partition-parallel executions must jointly meet S.
      p.success_target = std::pow(
          model.success_target,
          1.0 / static_cast<double>(cluster.num_nodes));
    }
    p.exact_wasted_time = model.exact_wasted_time;
    if (cluster.has_bursts()) {
      // Burst events per cost unit: rate per second divided by CONST_cost
      // (t_cost = t_seconds * CONST_cost).
      p.burst_rate_cost =
          1.0 / (cluster.burst_mtbf_seconds * model.cost_constant);
      p.burst_hit_fraction = cluster.burst_fanout;
    }
    return p;
  }

  /// \brief Placement dimensions derived from the cluster statistics.
  PlacementParams MakePlacementParams() const {
    PlacementParams p;
    p.num_groups = cluster.num_placement_groups;
    p.remote_read_penalty = cluster.remote_read_penalty;
    p.burst_failure_share = MakeFailureParams().burst_failure_share();
    return p;
  }

  /// \brief Write-ahead-lineage dimensions from the model knobs.
  WalParams MakeWalParams() const {
    WalParams w;
    w.enabled = model.wal_enabled;
    w.write_cost = model.wal_write_cost;
    w.replay_factor = model.wal_replay_factor;
    return w;
  }

  Status Validate() const {
    XDBFT_RETURN_NOT_OK(cluster.Validate());
    XDBFT_RETURN_NOT_OK(model.Validate());
    // The derived cost-unit parameters must survive the conversion too
    // (e.g. mtbf_seconds * cost_constant overflowing to inf).
    return MakeFailureParams().Validate();
  }
};

/// \brief Result of estimating one fault-tolerant plan.
struct FtPlanEstimate {
  /// TPt of the dominant path: the plan's estimated runtime under failures.
  double dominant_cost = 0.0;
  /// The dominant execution path itself.
  CollapsedPath dominant_path;
  /// Number of source->sink paths evaluated.
  size_t paths_evaluated = 0;
  /// Placement group per CollapsedId (empty when placement is inactive,
  /// i.e. one group and no correlated failures).
  std::vector<int> placement_groups;
};

/// \brief Cost model over collapsed plans.
class FtCostModel {
 public:
  explicit FtCostModel(FtCostContext context) : context_(context) {}

  const FtCostContext& context() const { return context_; }

  /// \brief T(c) (Eq. 8) for one collapsed operator.
  double OperatorCost(const CollapsedOp& c) const;

  /// \brief TPt (Eq. 7): total runtime of one execution path under
  /// mid-query failures.
  double PathCost(const CollapsedPlan& cp, const CollapsedPath& path) const;

  /// \brief Estimate a fault-tolerant plan: enumerate all execution paths
  /// of P^c and return the dominant one (Listing 1, lines 9-13).
  Result<FtPlanEstimate> Estimate(const CollapsedPlan& cp) const;

  /// \brief Convenience: collapse [plan, config] and estimate.
  Result<FtPlanEstimate> Estimate(const plan::Plan& plan,
                                  const MaterializationConfig& config) const;

 private:
  FtCostContext context_;
};

}  // namespace xdbft::ft
