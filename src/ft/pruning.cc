#include "ft/pruning.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xdbft::ft {

using plan::MatConstraint;
using plan::OpId;
using plan::Plan;

namespace {

// t({o}) for a singleton collapsed operator: no pipeline discount.
double SingletonCost(const plan::PlanNode& o) {
  return o.runtime_cost + o.materialize_cost;
}

// t({children..., p}) for the collapse of p with all its children: the
// dominant internal path is max_i tr(o_i) + tr(p), discounted by
// CONST_pipe, plus tm(p) (Fig. 5).
double CollapsedWithParentCost(const Plan& plan, const plan::PlanNode& p,
                               double pipe_constant) {
  double max_child_tr = 0.0;
  for (OpId in : p.inputs) {
    max_child_tr = std::max(max_child_tr, plan.node(in).runtime_cost);
  }
  return (max_child_tr + p.runtime_cost) * pipe_constant +
         p.materialize_cost;
}

// True iff `p` is the only consumer of `o`.
bool SoleConsumerIs(const Plan& plan, OpId o, OpId p) {
  const auto consumers = plan.Consumers(o);
  return consumers.size() == 1 && consumers[0] == p;
}

}  // namespace

int ApplyPruningRule1(Plan* plan, double pipe_constant) {
  int marked = 0;
  // Consider each parent p and the set of its children; the unary case is
  // the n-ary case with one child (§4.1 treats them separately only for
  // presentation).
  for (const auto& p : plan->nodes()) {
    if (p.inputs.empty()) continue;
    // Every child must have p as its sole consumer, otherwise collapsing a
    // child into p does not remove its other consumers' dependency on a
    // materialized copy.
    bool eligible = true;
    for (OpId in : p.inputs) {
      if (!SoleConsumerIs(*plan, in, p.id)) {
        eligible = false;
        break;
      }
    }
    if (!eligible) continue;

    const double collapsed = CollapsedWithParentCost(*plan, p, pipe_constant);
    // The rule requires t({o_1,...,o_k,p}) <= t({o_i}) for every free
    // child; only then is not materializing them guaranteed no worse.
    bool all_dominated = true;
    bool any_free = false;
    for (OpId in : p.inputs) {
      const auto& child = plan->node(in);
      if (!child.is_free()) continue;
      any_free = true;
      if (!(collapsed <= SingletonCost(child))) {
        all_dominated = false;
        break;
      }
    }
    if (!any_free || !all_dominated) continue;
    for (OpId in : p.inputs) {
      auto& child = plan->mutable_node(in);
      if (child.is_free()) {
        child.constraint = MatConstraint::kNeverMaterialize;
        ++marked;
      }
    }
  }
  XDBFT_COUNTER_ADD("enumerator.pruned_rule1", marked);
  return marked;
}

int ApplyPruningRule2(Plan* plan, const FtCostContext& context) {
  const FailureParams params = context.MakeFailureParams();
  const double pipe = context.model.pipe_constant;
  int marked = 0;
  for (const auto& p : plan->nodes()) {
    // Rule 2 applies only to children of *unary* parents (§4.2).
    if (p.inputs.size() != 1) continue;
    const OpId o_id = p.inputs[0];
    auto& o = plan->mutable_node(o_id);
    if (!o.is_free()) continue;
    if (!SoleConsumerIs(*plan, o_id, p.id)) continue;
    const double t_op =
        (o.runtime_cost + p.runtime_cost) * pipe + p.materialize_cost;
    // Effective (burst-adjusted) MTBF: under correlated failures the
    // collapsed pair succeeds less often, so rule 2 marks fewer operators.
    // Without bursts this is mtbf_cost exactly.
    const double gamma = SuccessProbability(t_op, params.effective_mtbf_cost());
    if (gamma >= params.success_target) {
      o.constraint = MatConstraint::kNeverMaterialize;
      ++marked;
    }
  }
  XDBFT_COUNTER_ADD("enumerator.pruned_rule2", marked);
  return marked;
}

namespace {

std::vector<PathOpCost> ToPairs(const std::vector<double>& costs) {
  std::vector<PathOpCost> out(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) out[i].t = costs[i];
  return out;
}

}  // namespace

void SortPathCosts(std::vector<PathOpCost>* costs) {
  std::sort(costs->begin(), costs->end(),
            [](const PathOpCost& a, const PathOpCost& b) {
              if (a.t != b.t) return a.t > b.t;
              return a.extra > b.extra;
            });
}

bool PairwiseDominates(const std::vector<PathOpCost>& sorted_path,
                       const DominantPathEntry& entry, bool strict) {
  // Shorter memos are implicitly padded with zero-cost operators
  // (paper §4.3).
  bool any_strict = false;
  for (size_t i = 0; i < sorted_path.size(); ++i) {
    static constexpr PathOpCost kZero{};
    const PathOpCost& memo_cost =
        i < entry.sorted_costs.size() ? entry.sorted_costs[i] : kZero;
    if (sorted_path[i].t < memo_cost.t) return false;
    if (sorted_path[i].extra < memo_cost.extra) return false;
    // Only a strictly greater t certifies a strictly greater TPt: U is
    // strictly increasing in t but merely non-decreasing in extra (the
    // refetch charge is multiplied by a(c), which can be 0).
    if (sorted_path[i].t > memo_cost.t) any_strict = true;
  }
  return !strict || any_strict;
}

bool PairwiseDominates(const std::vector<double>& sorted_path,
                       const DominantPathEntry& entry, bool strict) {
  return PairwiseDominates(ToPairs(sorted_path), entry, strict);
}

void DominantPathMemo::Record(std::vector<PathOpCost> costs, double total) {
  SortPathCosts(&costs);
  const size_t count = costs.size();
  auto it = by_count_.find(count);
  if (it == by_count_.end() || total < it->second.total) {
    by_count_[count] = DominantPathEntry{std::move(costs), total};
  }
}

void DominantPathMemo::Record(std::vector<double> costs, double total) {
  Record(ToPairs(costs), total);
}

bool DominantPathMemo::Dominates(std::vector<PathOpCost> path_costs) const {
  if (by_count_.empty()) return false;
  SortPathCosts(&path_costs);
  // Compare against every memoized path with at most as many collapsed
  // operators.
  for (const auto& [count, entry] : by_count_) {
    if (count > path_costs.size()) break;  // map is ordered by count
    if (PairwiseDominates(path_costs, entry, /*strict=*/false)) return true;
  }
  return false;
}

bool DominantPathMemo::Dominates(std::vector<double> path_costs) const {
  return Dominates(ToPairs(path_costs));
}

void ConcurrentDominantPathMemo::Record(std::vector<PathOpCost> costs,
                                        double total) {
  SortPathCosts(&costs);
  const size_t count = costs.size();
  Shard& shard = shards_[count % kNumShards];
  std::unique_lock lock(shard.mu);
  auto it = shard.by_count.find(count);
  if (it == shard.by_count.end()) {
    shard.by_count.emplace(count,
                           DominantPathEntry{std::move(costs), total});
    num_entries_.fetch_add(1, std::memory_order_release);
  } else if (total < it->second.total) {
    it->second = DominantPathEntry{std::move(costs), total};
  }
}

void ConcurrentDominantPathMemo::Record(std::vector<double> costs,
                                        double total) {
  Record(ToPairs(costs), total);
}

bool ConcurrentDominantPathMemo::Dominates(
    std::vector<PathOpCost> path_costs) const {
  if (empty()) return false;
  SortPathCosts(&path_costs);
  const size_t len = path_costs.size();
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [count, entry] : shard.by_count) {
      if (count > len) break;  // map is ordered by count
      if (PairwiseDominates(path_costs, entry, /*strict=*/true)) return true;
    }
  }
  return false;
}

bool ConcurrentDominantPathMemo::Dominates(
    std::vector<double> path_costs) const {
  return Dominates(ToPairs(path_costs));
}

void ConcurrentDominantPathMemo::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    shard.by_count.clear();
  }
  num_entries_.store(0, std::memory_order_release);
}

}  // namespace xdbft::ft
