#include "ft/checkpointing.h"

#include <algorithm>
#include <cmath>

namespace xdbft::ft {

Status CheckpointParams::Validate() const {
  if (checkpoint_cost < 0.0 || !std::isfinite(checkpoint_cost)) {
    return Status::InvalidArgument("checkpoint_cost must be non-negative");
  }
  if (interval < 0.0 || !std::isfinite(interval)) {
    return Status::InvalidArgument("interval must be non-negative");
  }
  return Status::OK();
}

int NumCheckpointSegments(double t, double interval) {
  if (interval <= 0.0 || t <= interval) return 1;
  return static_cast<int>(std::ceil(t / interval));
}

double OperatorTotalRuntimeWithCheckpoints(double t,
                                           const CheckpointParams& ckpt,
                                           const FailureParams& params) {
  if (t <= 0.0) return 0.0;
  const int k = NumCheckpointSegments(t, ckpt.interval);
  if (k == 1) return OperatorTotalRuntime(t, params);
  // Segments split the work evenly; every segment but the last also
  // writes a state checkpoint.
  const double work = t / static_cast<double>(k);
  const double with_ckpt = work + ckpt.checkpoint_cost;
  return static_cast<double>(k - 1) *
             OperatorTotalRuntime(with_ckpt, params) +
         OperatorTotalRuntime(work, params);
}

double OptimalCheckpointInterval(double t, double checkpoint_cost,
                                 const FailureParams& params) {
  if (t <= 0.0) return t;
  CheckpointParams ckpt;
  ckpt.checkpoint_cost = checkpoint_cost;
  double best_cost = OperatorTotalRuntime(t, params);
  double best_interval = t;
  // Discrete search over segment counts; runtimes are unimodal in k, but
  // the search space is tiny so scan with an early-out margin instead of
  // relying on unimodality.
  int rising = 0;
  for (int k = 2; k <= 10000; ++k) {
    ckpt.interval = t / static_cast<double>(k);
    const double cost =
        OperatorTotalRuntimeWithCheckpoints(t, ckpt, params);
    if (cost < best_cost) {
      best_cost = cost;
      best_interval = ckpt.interval;
      rising = 0;
    } else if (++rising > 32) {
      break;
    }
  }
  return best_interval;
}

double YoungDalyInterval(double checkpoint_cost, double mtbf_cost) {
  return std::sqrt(2.0 * std::max(checkpoint_cost, 0.0) * mtbf_cost);
}

}  // namespace xdbft::ft
