// Intra-operator checkpointing — the paper's first "future avenue of work"
// (§7): "integrate other fault-tolerance strategies (e.g., check-pointing
// of the operator state to also support mid-operator failures) ... helpful
// especially for long running operators which otherwise are likely to fail
// often."
//
// Model: an operator (collapsed sub-plan) of duration t whose state is
// checkpointed every delta seconds of progress executes as
// k = ceil(t/delta) segments of duration t/k + C each (C = cost of writing
// one state checkpoint). A mid-operator failure only repeats the current
// segment, so each segment is an independent retry unit costed by the
// paper's Eq. 8. The classic Young/Daly first-order optimum
// delta* = sqrt(2 * C * MTBF) falls out of the same analysis; we expose an
// exact minimizer over the percentile model.
#pragma once

#include "common/result.h"
#include "ft/failure_math.h"

namespace xdbft::ft {

/// \brief Intra-operator checkpointing settings.
struct CheckpointParams {
  /// Seconds to write one operator-state checkpoint (0 = free).
  double checkpoint_cost = 1.0;
  /// Checkpoint every `interval` seconds of operator progress; 0 disables
  /// checkpointing (the operator is one retry unit, Eq. 8).
  double interval = 0.0;

  Status Validate() const;
};

/// \brief Number of segments an operator of duration `t` splits into under
/// `interval` (>= 1; 1 when checkpointing is disabled or t <= interval).
int NumCheckpointSegments(double t, double interval);

/// \brief Expected total runtime of an operator of duration `t` with
/// checkpointing: k segments, each re-tried independently per Eq. 8.
/// Includes the checkpoint-write costs (the final segment also writes the
/// operator's regular output, which is costed by tm as usual and not here).
double OperatorTotalRuntimeWithCheckpoints(double t,
                                           const CheckpointParams& ckpt,
                                           const FailureParams& params);

/// \brief The checkpoint interval minimizing the expected runtime of an
/// operator of duration `t` under the percentile model (exact discrete
/// minimization over segment counts). Returns t (no checkpointing) if no
/// interval beats the single-segment execution.
double OptimalCheckpointInterval(double t, double checkpoint_cost,
                                 const FailureParams& params);

/// \brief Young/Daly first-order approximation sqrt(2*C*MTBF), provided
/// for comparison with the exact minimizer.
double YoungDalyInterval(double checkpoint_cost, double mtbf_cost);

}  // namespace xdbft::ft
