// Greedy materialization for wide plans: exhaustive enumeration is 2^f in
// the number of free operators, which the paper tames with pruning and
// top-k plans — but a plan with many dozens of free operators (deep ETL
// DAGs) still cannot be enumerated. This hill climber starts from the
// no-mat configuration and repeatedly flips the single flag with the best
// marginal improvement until no flip helps: O(f^2) cost-model calls, and
// on the paper's query shapes it matches the exhaustive optimum (see
// greedy_test.cc).
#pragma once

#include "common/result.h"
#include "ft/ft_cost.h"

namespace xdbft::ft {

/// \brief Result of the greedy search.
struct GreedyResult {
  MaterializationConfig config;
  /// Estimated runtime under failures of the final configuration.
  double estimated_cost = 0.0;
  /// Flags flipped (= hill-climbing steps taken).
  int steps = 0;
};

/// \brief Greedy hill climbing over materialization flags (both
/// directions: a flip may set or clear a flag, so the climber can also
/// improve an all-mat-like start). Deterministic; ties broken by the
/// lowest operator id.
Result<GreedyResult> GreedyMaterialization(const plan::Plan& plan,
                                           const FtCostContext& context);

}  // namespace xdbft::ft
