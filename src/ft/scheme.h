// The four fault-tolerance schemes compared in the paper's evaluation
// (§5.2): all-mat (Hadoop), no-mat lineage (Shark/Spark), no-mat restart
// (parallel database) and the paper's cost-based scheme. A scheme is a
// materialization policy plus a recovery mode.
#pragma once

#include <string>

#include "common/result.h"
#include "ft/enumerator.h"

namespace xdbft::ft {

enum class SchemeKind : int {
  /// Materialize every intermediate; restart only failed sub-plans.
  kAllMat,
  /// Materialize nothing; recompute failed sub-plans from lineage.
  kNoMatLineage,
  /// Materialize nothing; restart the whole query on any failure.
  kNoMatRestart,
  /// This paper: cost-based subset materialization; fine-grained restart.
  kCostBased,
  /// Write-ahead lineage (arXiv:2403.08062): materialize nothing, log
  /// lineage before results flow downstream, replay the log on failure.
  /// Built for pipelined workloads where blocking materialization is the
  /// wrong primitive.
  kWriteAheadLineage,
};

const char* SchemeKindName(SchemeKind kind);

/// \brief How the engine recovers when a mid-query failure is detected.
enum class RecoveryMode : int {
  /// Restart only the failed sub-plan (collapsed operator x partition)
  /// from its last materialized inputs.
  kFineGrained,
  /// Restart the entire query from the beginning.
  kFullRestart,
  /// Replay the failed sub-plan from its last *logged* lineage frontier
  /// (write-ahead lineage): durable progress survives the failure and is
  /// re-applied at a replay discount instead of recomputed.
  kWalReplay,
};

/// \brief A scheme instantiated for one query: the plan with its
/// materialization configuration and recovery mode, ready for execution.
struct SchemePlan {
  SchemeKind kind = SchemeKind::kCostBased;
  RecoveryMode recovery = RecoveryMode::kFineGrained;
  plan::Plan plan;
  /// Index of `plan` in the candidate list the scheme was applied to
  /// (0 for the single-plan entry points).
  size_t plan_index = 0;
  MaterializationConfig config;
  /// Cost-model estimate of runtime under failures (dominant-path TPt).
  double estimated_cost = 0.0;
  /// Placement group per collapsed operator (correlated-failure
  /// extension); empty when placement is inactive.
  std::vector<int> placement_groups;
};

/// \brief Instantiate `kind` for `plan` under the given cluster/model
/// statistics. For kCostBased this runs findBestFTPlan over the single
/// plan; `options` controls its pruning.
Result<SchemePlan> ApplyScheme(SchemeKind kind, const plan::Plan& plan,
                               const FtCostContext& context,
                               const EnumerationOptions& options = {});

/// \brief Cost-based over multiple candidate plans (the optimizer's
/// top-k), per §3.2.
Result<SchemePlan> ApplyCostBasedScheme(
    const std::vector<plan::Plan>& candidates, const FtCostContext& context,
    const EnumerationOptions& options = {});

}  // namespace xdbft::ft
