// Search-space pruning for materialization-configuration enumeration
// (paper §4). Rules 1 and 2 are pre-passes over a plan that mark operators
// non-materializable (turning f(o)=1 into a bound m(o)=0) and thereby halve
// the configuration space per marked operator. Rule 3 (long execution paths
// with memoized dominant paths, Eq. 9) runs inside the enumerator; its
// helper, DominantPathMemo, lives here.
//
// Exactness: rule 3 only skips paths whose TPt provably cannot beat the
// memoized best, so it preserves the optimum exactly. Rules 1 and 2 rest on
// the paper's *pairwise* collapse arguments ({o,p} vs {o},{p}); in the full
// configuration space, where a banned operator may end up merged into a much
// larger collapsed operator, they are near-optimal heuristics rather than
// strict guarantees (see FullPruningNearOptimal in enumerator_test.cc).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ft/ft_cost.h"
#include "plan/plan.h"

namespace xdbft::ft {

/// \brief Which pruning rules the enumerator applies.
struct PruningOptions {
  /// Rule 1 (§4.1): mark o non-materializable when collapsing it into its
  /// parent is guaranteed cheaper than materializing it.
  bool rule1 = true;
  /// Rule 2 (§4.2): mark o non-materializable when the collapsed {o, p}
  /// already meets the desired success probability S.
  bool rule2 = true;
  /// Rule 3 (§4.3): stop path enumeration of an FT plan early once a path
  /// at least as expensive as the best memoized dominant path is found.
  bool rule3 = true;
  /// Extension of rule 3: memoize the best dominant path per
  /// collapsed-operator count and prune via the pairwise sorted comparison
  /// of Eq. 9.
  bool memoize_dominant_paths = true;
};

/// \brief Rule 1 — high materialization costs (§4.1). Marks free operators
/// whose collapse into their (sole-consumer) parent is guaranteed not to
/// increase any path's runtime under failures, i.e. when
/// t({children..., p}) <= t({o_i}) for every free child o_i. Handles both
/// the unary- and the n-ary-parent case. Returns the number of operators
/// marked (constraint set to kNeverMaterialize).
int ApplyPruningRule1(plan::Plan* plan, double pipe_constant);

/// \brief Rule 2 — high probability of success (§4.2). For a free operator
/// o whose sole consumer p is unary, marks o non-materializable when
/// gamma({o, p}) >= S under the context's effective MTBF. Returns the
/// number of operators marked.
int ApplyPruningRule2(plan::Plan* plan, const FtCostContext& context);

/// \brief Memo store for rule 3's dominant-path comparison (Eq. 9): for
/// each collapsed-operator count, the t(c) multiset (sorted descending) of
/// the cheapest dominant path seen so far.
class DominantPathMemo {
 public:
  /// \brief Record the dominant path of a newly accepted best plan.
  /// `costs` are the t(c) values along the path; `total` its TPt.
  void Record(std::vector<double> costs, double total);

  /// \brief True iff `path_costs` (t(c) values of the path under test)
  /// pairwise dominates some memoized dominant path with at most as many
  /// collapsed operators (shorter memos are padded with zero-cost
  /// operators, as the paper allows).
  bool Dominates(std::vector<double> path_costs) const;

  bool empty() const { return by_count_.empty(); }
  void Clear() { by_count_.clear(); }

 private:
  struct Entry {
    std::vector<double> sorted_costs;  // descending
    double total = 0.0;
  };
  std::map<size_t, Entry> by_count_;
};

}  // namespace xdbft::ft
