// Search-space pruning for materialization-configuration enumeration
// (paper §4). Rules 1 and 2 are pre-passes over a plan that mark operators
// non-materializable (turning f(o)=1 into a bound m(o)=0) and thereby halve
// the configuration space per marked operator. Rule 3 (long execution paths
// with memoized dominant paths, Eq. 9) runs inside the enumerator; its
// helper, DominantPathMemo, lives here.
//
// Exactness: rule 3 only skips paths whose TPt provably cannot beat the
// memoized best, so it preserves the optimum exactly. Rules 1 and 2 rest on
// the paper's *pairwise* collapse arguments ({o,p} vs {o},{p}); in the full
// configuration space, where a banned operator may end up merged into a much
// larger collapsed operator, they are near-optimal heuristics rather than
// strict guarantees (see FullPruningNearOptimal in enumerator_test.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <vector>

#include "ft/ft_cost.h"
#include "plan/plan.h"

namespace xdbft::ft {

/// \brief Which pruning rules the enumerator applies.
struct PruningOptions {
  /// Rule 1 (§4.1): mark o non-materializable when collapsing it into its
  /// parent is guaranteed cheaper than materializing it.
  bool rule1 = true;
  /// Rule 2 (§4.2): mark o non-materializable when the collapsed {o, p}
  /// already meets the desired success probability S.
  bool rule2 = true;
  /// Rule 3 (§4.3): stop path enumeration of an FT plan early once a path
  /// at least as expensive as the best memoized dominant path is found.
  bool rule3 = true;
  /// Extension of rule 3: memoize the best dominant path per
  /// collapsed-operator count and prune via the pairwise sorted comparison
  /// of Eq. 9.
  bool memoize_dominant_paths = true;
};

/// \brief Rule 1 — high materialization costs (§4.1). Marks free operators
/// whose collapse into their (sole-consumer) parent is guaranteed not to
/// increase any path's runtime under failures, i.e. when
/// t({children..., p}) <= t({o_i}) for every free child o_i. Handles both
/// the unary- and the n-ary-parent case. Returns the number of operators
/// marked (constraint set to kNeverMaterialize).
int ApplyPruningRule1(plan::Plan* plan, double pipe_constant);

/// \brief Rule 2 — high probability of success (§4.2). For a free operator
/// o whose sole consumer p is unary, marks o non-materializable when
/// gamma({o, p}) >= S under the context's effective MTBF. Returns the
/// number of operators marked.
int ApplyPruningRule2(plan::Plan* plan, const FtCostContext& context);

/// \brief Cost of one collapsed operator along a path, in the dimensions
/// the per-operator runtime U(t, extra) = t + a(t)(w(t) + MTTR + extra) is
/// monotone in: the placed runtime t and the per-attempt refetch charge
/// extra. Placement-unaware paths use extra == 0 throughout, which makes
/// the pairwise comparison degenerate exactly to the scalar Eq. 9.
struct PathOpCost {
  double t = 0.0;
  double extra = 0.0;
};

/// \brief One memoized dominant path: its (t, extra) multiset sorted
/// descending lexicographically and its total TPt.
struct DominantPathEntry {
  std::vector<PathOpCost> sorted_costs;  // descending lex by (t, extra)
  double total = 0.0;
};

/// \brief Eq. 9 pairwise comparison, extended to placement: true iff
/// `sorted_path` (descending lex) is >= `entry.sorted_costs` position by
/// position in *both* dimensions (t and extra), padding the shorter memo
/// with zero-cost operators. U is increasing in both arguments, so a
/// componentwise-dominating matching certifies TPt(path) >= entry.total;
/// comparing at identical sort ranks is a sound (conservative) way to find
/// one. With `strict`, additionally requires a strictly greater *t* at some
/// position — U is strictly increasing in t but only weakly in extra (an
/// operator with a(c) == 0 never pays the refetch), so only a t-gap
/// certifies TPt(path) > entry.total. Exact cost ties are therefore *not*
/// pruned and survive to deterministic tie-breaking (see FtPlanEnumerator).
bool PairwiseDominates(const std::vector<PathOpCost>& sorted_path,
                       const DominantPathEntry& entry, bool strict);

/// \brief Scalar convenience for placement-unaware paths (extra == 0).
bool PairwiseDominates(const std::vector<double>& sorted_path,
                       const DominantPathEntry& entry, bool strict);

/// \brief Canonical memo order: descending lexicographic by (t, extra).
void SortPathCosts(std::vector<PathOpCost>* costs);

/// \brief Memo store for rule 3's dominant-path comparison (Eq. 9): for
/// each collapsed-operator count, the t(c) multiset (sorted descending) of
/// the cheapest dominant path seen so far. Single-threaded.
class DominantPathMemo {
 public:
  /// \brief Record the dominant path of a newly accepted best plan.
  /// `costs` are the (t, extra) values along the path; `total` its TPt.
  void Record(std::vector<PathOpCost> costs, double total);
  void Record(std::vector<double> costs, double total);

  /// \brief True iff `path_costs` ((t, extra) values of the path under
  /// test) pairwise dominates some memoized dominant path with at most as
  /// many collapsed operators (shorter memos are padded with zero-cost
  /// operators, as the paper allows).
  bool Dominates(std::vector<PathOpCost> path_costs) const;
  bool Dominates(std::vector<double> path_costs) const;

  bool empty() const { return by_count_.empty(); }
  void Clear() { by_count_.clear(); }

 private:
  std::map<size_t, DominantPathEntry> by_count_;
};

/// \brief Thread-safe DominantPathMemo used by the parallel enumerator.
/// Entries are sharded by collapsed-operator count (mutex striping: one
/// shared_mutex per shard, so concurrent probes of paths with different
/// lengths never contend and same-length probes share a read lock).
/// Dominates() is always strict (see PairwiseDominates): a pruned
/// configuration provably costs *more* than a memoized total, never the
/// same, which keeps the parallel search's winner identical to the
/// sequential one under exact cost ties.
class ConcurrentDominantPathMemo {
 public:
  void Record(std::vector<PathOpCost> costs, double total);
  void Record(std::vector<double> costs, double total);

  /// \brief Strict Eq. 9 dominance over any memoized path with at most as
  /// many collapsed operators.
  bool Dominates(std::vector<PathOpCost> path_costs) const;
  bool Dominates(std::vector<double> path_costs) const;

  /// \brief Cheap pre-check (relaxed; may briefly lag Record calls).
  bool empty() const {
    return num_entries_.load(std::memory_order_acquire) == 0;
  }
  void Clear();

 private:
  static constexpr size_t kNumShards = 8;
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<size_t, DominantPathEntry> by_count;
  };
  Shard shards_[kNumShards];
  std::atomic<size_t> num_entries_{0};
};

}  // namespace xdbft::ft
