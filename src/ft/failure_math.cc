#include "ft/failure_math.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xdbft::ft {

Status FailureParams::Validate() const {
  if (!(mtbf_cost > 0.0) || !std::isfinite(mtbf_cost)) {
    return Status::InvalidArgument("mtbf_cost must be positive and finite");
  }
  if (mttr_cost < 0.0 || !std::isfinite(mttr_cost)) {
    return Status::InvalidArgument("mttr_cost must be non-negative");
  }
  if (!(success_target > 0.0) || !(success_target < 1.0)) {
    return Status::InvalidArgument("success_target must be in (0, 1)");
  }
  return Status::OK();
}

double SuccessProbability(double t, double mtbf_cost) {
  if (t <= 0.0) return 1.0;
  return std::exp(-t / mtbf_cost);
}

double FailureProbability(double t, double mtbf_cost) {
  if (t <= 0.0) return 0.0;
  // 1 - e^{-x} computed stably.
  return -std::expm1(-t / mtbf_cost);
}

double WastedTimeExact(double t, double mtbf_cost) {
  if (t <= 0.0) return 0.0;
  const double x = t / mtbf_cost;
  if (x < 1e-9) {
    // Series expansion of MTBF - t/(e^x - 1) = t/2 - t*x/12 + O(x^3).
    return t * (0.5 - x / 12.0);
  }
  return mtbf_cost - t / std::expm1(x);
}

double WastedTimeApprox(double t) { return std::max(t, 0.0) / 2.0; }

double WastedTime(double t, const FailureParams& params) {
  return params.exact_wasted_time ? WastedTimeExact(t, params.mtbf_cost)
                                  : WastedTimeApprox(t);
}

double ExpectedAttempts(double t, double mtbf_cost, double success_target) {
  if (t <= 0.0) return 0.0;
  const double x = t / mtbf_cost;
  // log(eta) = log(1 - e^{-x}) without forming eta: for x > ~36 the
  // subtraction rounds eta to exactly 1 and log(eta) to 0, turning a(c)
  // into a spurious infinity while the true value (~ -log(1-S) e^x) is
  // still comfortably representable up to x ~ 700.
  const double log_eta = std::log1p(-std::exp(-x));
  if (!(log_eta < 0.0)) {
    // e^{-x} underflowed: the true a(c) overflows double anyway.
    return std::numeric_limits<double>::infinity();
  }
  const double a = std::log1p(-success_target) / log_eta - 1.0;
  return std::max(a, 0.0);
}

double OperatorTotalRuntime(double t, const FailureParams& params) {
  if (t <= 0.0) return 0.0;
  const double a = ExpectedAttempts(t, params.mtbf_cost,
                                    params.success_target);
  const double w = WastedTime(t, params);
  return t + a * w + a * params.mttr_cost;
}

double QuerySuccessProbability(double t, double mtbf_per_node,
                               int num_nodes) {
  if (t <= 0.0) return 1.0;
  return std::exp(-t * static_cast<double>(num_nodes) / mtbf_per_node);
}

double SuccessWithinAttempts(double t, double mtbf_cost, double attempts) {
  const double eta = FailureProbability(t, mtbf_cost);
  if (eta <= 0.0) return 1.0;
  return 1.0 - std::pow(eta, attempts + 1.0);
}

}  // namespace xdbft::ft
