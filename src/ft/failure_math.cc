#include "ft/failure_math.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xdbft::ft {

double FailureParams::effective_mtbf_cost() const {
  const double hazard = burst_hazard();
  // Exact identity when bursts are off: returning mtbf_cost directly (not
  // 1/(1/mtbf)) keeps the correlated-off path bit-for-bit identical.
  if (!(hazard > 0.0)) return mtbf_cost;
  return 1.0 / (1.0 / mtbf_cost + hazard);
}

double FailureParams::burst_failure_share() const {
  const double hazard = burst_hazard();
  if (!(hazard > 0.0)) return 0.0;
  return hazard / (1.0 / mtbf_cost + hazard);
}

Status FailureParams::Validate() const {
  if (!(mtbf_cost > 0.0) || !std::isfinite(mtbf_cost)) {
    return Status::InvalidArgument("mtbf_cost must be positive and finite");
  }
  if (mttr_cost < 0.0 || !std::isfinite(mttr_cost)) {
    return Status::InvalidArgument("mttr_cost must be non-negative");
  }
  if (!(success_target > 0.0) || !(success_target < 1.0)) {
    return Status::InvalidArgument("success_target must be in (0, 1)");
  }
  if (burst_rate_cost < 0.0 || !std::isfinite(burst_rate_cost)) {
    return Status::InvalidArgument(
        "burst_rate_cost must be non-negative and finite");
  }
  if (!(burst_hit_fraction > 0.0) || burst_hit_fraction > 1.0) {
    return Status::InvalidArgument("burst_hit_fraction must be in (0, 1]");
  }
  return Status::OK();
}

double SuccessProbability(double t, double mtbf_cost) {
  if (t <= 0.0) return 1.0;
  if (!(mtbf_cost > 0.0)) return 0.0;
  return std::exp(-t / mtbf_cost);
}

double FailureProbability(double t, double mtbf_cost) {
  if (t <= 0.0) return 0.0;
  if (!(mtbf_cost > 0.0)) return 1.0;
  // 1 - e^{-x} computed stably.
  return -std::expm1(-t / mtbf_cost);
}

double WastedTimeExact(double t, double mtbf_cost) {
  if (t <= 0.0) return 0.0;
  if (!(mtbf_cost > 0.0) || !std::isfinite(mtbf_cost)) return 0.0;
  const double x = t / mtbf_cost;
  if (x < 1e-9) {
    // Series expansion of MTBF - t/(e^x - 1) = t/2 - t*x/12 + O(x^3).
    return t * (0.5 - x / 12.0);
  }
  if (x > 700.0) {
    // e^x overflows (and for t = inf the quotient would be inf/inf = NaN);
    // the exact value has already converged to its asymptote, MTBF.
    return mtbf_cost;
  }
  return mtbf_cost - t / std::expm1(x);
}

double WastedTimeApprox(double t) { return std::max(t, 0.0) / 2.0; }

double WastedTime(double t, const FailureParams& params) {
  return params.exact_wasted_time
             ? WastedTimeExact(t, params.effective_mtbf_cost())
             : WastedTimeApprox(t);
}

double ExpectedAttempts(double t, double mtbf_cost, double success_target) {
  if (t <= 0.0) return 0.0;
  if (!(success_target > 0.0)) return 0.0;
  // S == 1.0 would give log1p(-1) = -inf (and -inf / -inf = NaN when eta
  // also rounds to 1). Clamp one ulp below 1: the caller asked for
  // "practically certain", which the largest-representable S delivers
  // without poisoning downstream arithmetic with NaN/inf.
  const double s = std::min(success_target, 0x1.fffffffffffffp-1);
  const double x = t / mtbf_cost;
  // log(eta) = log(1 - e^{-x}) without forming eta: for x > ~36 the
  // subtraction rounds eta to exactly 1 and log(eta) to 0, turning a(c)
  // into a spurious infinity while the true value (~ -log(1-S) e^x) is
  // still comfortably representable up to x ~ 700.
  const double log_eta = std::log1p(-std::exp(-x));
  if (!(log_eta < 0.0)) {
    // e^{-x} underflowed: the true a(c) overflows double anyway.
    return std::numeric_limits<double>::infinity();
  }
  const double a = std::log1p(-s) / log_eta - 1.0;
  return std::max(a, 0.0);
}

double OperatorTotalRuntime(double t, const FailureParams& params) {
  return OperatorTotalRuntime(t, params, 0.0);
}

double OperatorTotalRuntime(double t, const FailureParams& params,
                            double extra_cost_per_attempt) {
  if (t <= 0.0) return 0.0;
  const double a = ExpectedAttempts(t, params.effective_mtbf_cost(),
                                    params.success_target);
  const double w = WastedTime(t, params);
  // Keep the historical summation order; the extra term is only added when
  // present so a zero extra (and the plain overload) stays bit-identical
  // (also avoids inf * 0 = NaN when a(c) overflows).
  const double base = t + a * w + a * params.mttr_cost;
  if (!(extra_cost_per_attempt > 0.0)) return base;
  return base + a * extra_cost_per_attempt;
}

double OperatorTotalRuntimeWalReplay(double t, const FailureParams& params,
                                     double replay_factor,
                                     double extra_cost_per_attempt) {
  if (t <= 0.0) return 0.0;
  const double a = ExpectedAttempts(t, params.effective_mtbf_cost(),
                                    params.success_target);
  const double w = WastedTime(t, params);
  // Same summation order as OperatorTotalRuntime; replay_factor == 1.0
  // multiplies w exactly and reproduces it bit-for-bit.
  const double base = t + a * (replay_factor * w) + a * params.mttr_cost;
  if (!(extra_cost_per_attempt > 0.0)) return base;
  return base + a * extra_cost_per_attempt;
}

double QuerySuccessProbability(double t, double mtbf_per_node,
                               int num_nodes) {
  if (t <= 0.0) return 1.0;
  if (num_nodes <= 0) return 1.0;  // no nodes -> nothing can fail
  if (!(mtbf_per_node > 0.0)) return 0.0;  // failures are certain
  return std::exp(-t * static_cast<double>(num_nodes) / mtbf_per_node);
}

double QuerySuccessProbabilityCorrelated(double t, double mtbf_per_node,
                                         int num_nodes,
                                         double total_burst_rate) {
  if (!(total_burst_rate > 0.0)) {
    return QuerySuccessProbability(t, mtbf_per_node, num_nodes);
  }
  if (t <= 0.0) return 1.0;
  double independent_rate = 0.0;
  if (num_nodes > 0) {
    if (!(mtbf_per_node > 0.0)) return 0.0;
    independent_rate = static_cast<double>(num_nodes) / mtbf_per_node;
  }
  return std::exp(-t * (independent_rate + total_burst_rate));
}

double SuccessWithinAttempts(double t, double mtbf_cost, double attempts) {
  const double eta = FailureProbability(t, mtbf_cost);
  if (eta <= 0.0) return 1.0;
  // N = -1 means zero total attempts: success is impossible (P = 0), and
  // anything below -1 is nonsensical — clamp rather than return a negative
  // "probability" (eta^{N+1} > 1 for N < -1).
  const double n = std::max(attempts, -1.0);
  return 1.0 - std::pow(eta, n + 1.0);
}

}  // namespace xdbft::ft
