// CollapsedPlan: P^c construction from a fault-tolerant plan [P, M_P]
// (paper §3.3). A collapsed operator represents the unit of re-execution: a
// maximal sub-plan of non-materialized operators pipelined into one
// materializing anchor. Once a collapsed operator has materialized its
// output it never re-executes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "ft/mat_config.h"
#include "plan/plan.h"

namespace xdbft::ft {

/// \brief Index of a collapsed operator within a CollapsedPlan.
using CollapsedId = int32_t;

/// \brief One collapsed operator c of P^c.
struct CollapsedOp {
  CollapsedId id = -1;
  /// coll(c): ids of the original operators collapsed into this one. A
  /// non-materialized operator feeding several materializing consumers is
  /// duplicated into each (its work is re-done per consumer on recovery).
  std::vector<plan::OpId> members;
  /// The materializing operator anchoring this collapsed op.
  plan::OpId anchor = plan::kInvalidOpId;
  /// dom(c): the member ids on the longest (by tr) internal execution path
  /// ending at the anchor, in execution order.
  std::vector<plan::OpId> dominant_members;
  /// tr(c) per Eq. 1: sum of tr over dom(c), discounted by CONST_pipe when
  /// the dominant path pipelines more than one operator.
  double runtime_cost = 0.0;
  /// tm(c): materialization cost of the anchor.
  double materialize_cost = 0.0;
  /// Sum of tm over coll(c) \ {anchor}: the volume of intermediate results
  /// flowing *inside* this collapsed op. Under write-ahead lineage this is
  /// the volume whose lineage must be logged before results flow on.
  double lineage_volume = 0.0;
  /// Collapsed operators whose (materialized) output this one reads.
  std::vector<CollapsedId> inputs;

  /// \brief t(c) = tr(c) + tm(c) (paper §3.3).
  double total_cost() const { return runtime_cost + materialize_cost; }
};

/// \brief An execution path through P^c: source -> ... -> sink (§3.4).
using CollapsedPath = std::vector<CollapsedId>;

/// \brief The collapsed plan P^c.
class CollapsedPlan {
 public:
  /// \brief Build P^c from [plan, config]. `pipe_constant` is CONST_pipe of
  /// Eq. 1. The config must be valid for the plan.
  static Result<CollapsedPlan> Create(const plan::Plan& plan,
                                      const MaterializationConfig& config,
                                      double pipe_constant = 1.0);

  size_t num_ops() const { return ops_.size(); }
  const CollapsedOp& op(CollapsedId id) const {
    return ops_[static_cast<size_t>(id)];
  }
  const std::vector<CollapsedOp>& ops() const { return ops_; }

  /// \brief Collapsed ops with no inputs / no consumers.
  const std::vector<CollapsedId>& sources() const { return sources_; }
  const std::vector<CollapsedId>& sinks() const { return sinks_; }

  /// \brief Consumers of a collapsed op.
  std::vector<CollapsedId> Consumers(CollapsedId id) const;

  /// \brief Enumerate every source->sink execution path. The visitor
  /// returns false to stop the enumeration early (pruning rule 3).
  /// Returns the number of paths visited.
  size_t ForEachPath(
      const std::function<bool(const CollapsedPath&)>& visit) const;

  /// \brief All execution paths (convenience; may be exponential).
  std::vector<CollapsedPath> AllPaths() const;

  /// \brief Number of source->sink paths, computed by DP without
  /// materializing them (used by rule-3 accounting).
  size_t CountPaths() const;

  /// \brief Sum of t(c) along a path: RPt, the path runtime without
  /// mid-query failures (§4.3).
  double PathRuntimeNoFailure(const CollapsedPath& path) const;

  /// \brief Critical-path makespan of P^c without failures, respecting
  /// inter-operator parallelism (used as simulation baseline).
  double MakespanNoFailure() const;

  std::string Explain() const;

 private:
  std::vector<CollapsedOp> ops_;
  std::vector<CollapsedId> sources_;
  std::vector<CollapsedId> sinks_;
};

}  // namespace xdbft::ft
