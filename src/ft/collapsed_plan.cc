#include "ft/collapsed_plan.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace xdbft::ft {

using plan::OpId;
using plan::Plan;

Result<CollapsedPlan> CollapsedPlan::Create(
    const Plan& plan, const MaterializationConfig& config,
    double pipe_constant) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(config.Validate(plan));
  if (!(pipe_constant > 0.0) || pipe_constant > 1.0) {
    return Status::InvalidArgument("pipe_constant must be in (0, 1]");
  }

  CollapsedPlan cp;
  std::map<OpId, CollapsedId> anchor_to_id;

  // Anchors in ascending (= topological) order so that input collapsed ops
  // exist before their consumers.
  for (const auto& node : plan.nodes()) {
    if (!config.materialized(node.id)) continue;
    CollapsedOp c;
    c.id = static_cast<CollapsedId>(cp.ops_.size());
    c.anchor = node.id;

    // Collect coll(c): the anchor plus all non-materialized ancestors
    // reachable without crossing a materialized operator.
    std::set<OpId> members;
    std::set<CollapsedId> input_ids;
    std::vector<OpId> stack = {node.id};
    while (!stack.empty()) {
      const OpId o = stack.back();
      stack.pop_back();
      if (!members.insert(o).second) continue;
      for (OpId in : plan.node(o).inputs) {
        if (config.materialized(in)) {
          input_ids.insert(anchor_to_id.at(in));
        } else {
          stack.push_back(in);
        }
      }
    }
    c.members.assign(members.begin(), members.end());
    c.inputs.assign(input_ids.begin(), input_ids.end());

    // Dominant internal path dom(c): the max-tr path over coll(c)'s
    // internal edges ending at the anchor (Eq. 1).
    std::map<OpId, double> longest;
    std::map<OpId, OpId> pred;
    for (OpId o : c.members) {  // ascending ids = topological
      double best_in = 0.0;
      OpId best_pred = plan::kInvalidOpId;
      for (OpId in : plan.node(o).inputs) {
        if (!members.count(in)) continue;
        if (longest.at(in) > best_in) {
          best_in = longest.at(in);
          best_pred = in;
        }
      }
      longest[o] = plan.node(o).runtime_cost + best_in;
      pred[o] = best_pred;
    }
    for (OpId o = node.id; o != plan::kInvalidOpId; o = pred.at(o)) {
      c.dominant_members.push_back(o);
    }
    std::reverse(c.dominant_members.begin(), c.dominant_members.end());

    const double factor =
        c.dominant_members.size() > 1 ? pipe_constant : 1.0;
    c.runtime_cost = longest.at(node.id) * factor;
    c.materialize_cost = plan.node(node.id).materialize_cost;
    for (OpId m : c.members) {
      if (m == node.id) continue;
      c.lineage_volume += plan.node(m).materialize_cost;
    }

    anchor_to_id[node.id] = c.id;
    cp.ops_.push_back(std::move(c));
  }

  std::vector<bool> has_consumer(cp.ops_.size(), false);
  for (const auto& c : cp.ops_) {
    if (c.inputs.empty()) cp.sources_.push_back(c.id);
    for (CollapsedId in : c.inputs) {
      has_consumer[static_cast<size_t>(in)] = true;
    }
  }
  for (const auto& c : cp.ops_) {
    if (!has_consumer[static_cast<size_t>(c.id)]) cp.sinks_.push_back(c.id);
  }
  return cp;
}

std::vector<CollapsedId> CollapsedPlan::Consumers(CollapsedId id) const {
  std::vector<CollapsedId> out;
  for (const auto& c : ops_) {
    if (std::find(c.inputs.begin(), c.inputs.end(), id) != c.inputs.end()) {
      out.push_back(c.id);
    }
  }
  return out;
}

size_t CollapsedPlan::ForEachPath(
    const std::function<bool(const CollapsedPath&)>& visit) const {
  // Precompute consumer adjacency once.
  std::vector<std::vector<CollapsedId>> consumers(ops_.size());
  for (const auto& c : ops_) {
    for (CollapsedId in : c.inputs) {
      consumers[static_cast<size_t>(in)].push_back(c.id);
    }
  }
  size_t visited = 0;
  bool stop = false;
  CollapsedPath path;
  // Iterative DFS with explicit path stack.
  std::function<void(CollapsedId)> dfs = [&](CollapsedId id) {
    if (stop) return;
    path.push_back(id);
    const auto& next = consumers[static_cast<size_t>(id)];
    if (next.empty()) {
      ++visited;
      if (!visit(path)) stop = true;
    } else {
      for (CollapsedId n : next) {
        dfs(n);
        if (stop) break;
      }
    }
    path.pop_back();
  };
  for (CollapsedId s : sources_) {
    dfs(s);
    if (stop) break;
  }
  return visited;
}

std::vector<CollapsedPath> CollapsedPlan::AllPaths() const {
  std::vector<CollapsedPath> out;
  ForEachPath([&](const CollapsedPath& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

size_t CollapsedPlan::CountPaths() const {
  std::vector<size_t> count(ops_.size(), 0);
  for (const auto& c : ops_) {  // ascending id = topological
    if (c.inputs.empty()) {
      count[static_cast<size_t>(c.id)] = 1;
      continue;
    }
    size_t total = 0;
    for (CollapsedId in : c.inputs) {
      total += count[static_cast<size_t>(in)];
    }
    count[static_cast<size_t>(c.id)] = total;
  }
  size_t total = 0;
  for (CollapsedId sink : sinks_) {
    total += count[static_cast<size_t>(sink)];
  }
  return total;
}

double CollapsedPlan::PathRuntimeNoFailure(const CollapsedPath& path) const {
  double total = 0.0;
  for (CollapsedId id : path) total += op(id).total_cost();
  return total;
}

double CollapsedPlan::MakespanNoFailure() const {
  std::vector<double> finish(ops_.size(), 0.0);
  double makespan = 0.0;
  for (const auto& c : ops_) {  // ascending id = topological
    double ready = 0.0;
    for (CollapsedId in : c.inputs) {
      ready = std::max(ready, finish[static_cast<size_t>(in)]);
    }
    finish[static_cast<size_t>(c.id)] = ready + c.total_cost();
    makespan = std::max(makespan, finish[static_cast<size_t>(c.id)]);
  }
  return makespan;
}

std::string CollapsedPlan::Explain() const {
  std::ostringstream os;
  os << "CollapsedPlan (" << ops_.size() << " collapsed operators)\n";
  for (const auto& c : ops_) {
    std::vector<std::string> mems;
    mems.reserve(c.members.size());
    for (OpId m : c.members) mems.push_back(std::to_string(m));
    os << StrFormat("  c%-3d {%s} anchor=%d tr=%.3f tm=%.3f t=%.3f", c.id,
                    Join(mems, ",").c_str(), c.anchor, c.runtime_cost,
                    c.materialize_cost, c.total_cost());
    if (!c.inputs.empty()) {
      os << "  <- {";
      for (size_t i = 0; i < c.inputs.size(); ++i) {
        if (i) os << ",";
        os << "c" << c.inputs[i];
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace xdbft::ft
