// Closed-form failure mathematics of the cost model (paper §3.5 and §1
// footnote 1): success probabilities under Poisson failure arrivals, the
// expected wasted runtime per failure w(c) (Eq. 2-4), the attempts percentile
// a(c) (Eq. 5-6) and the per-operator total runtime T(c) (Eq. 8).
//
// Correlated failures (arXiv:1508.04907): beyond the independent per-node
// Poisson process, a *burst* process fires with rate lambda_g and takes down
// a `burst_hit_fraction` share of the executing group in one event. For the
// operator this is an additional exponential hazard: the effective failure
// rate becomes 1/mtbf_cost + burst_hit_fraction * burst_rate_cost, and the
// whole Eq. 2-8 machinery applies to the combined process. With
// burst_rate_cost == 0 every formula degrades bit-for-bit to the independent
// model.
#pragma once

#include "common/status.h"

namespace xdbft::ft {

/// \brief Parameters of the failure process as seen by a partition-parallel
/// operator, in internal cost units (seconds x CONST_cost).
///
/// `mtbf_cost` must already be the *effective* MTBF of the executing node
/// group: with n independent nodes of per-node MTBF M, the first failure
/// arrives with rate n/M, i.e. mtbf_cost = M * CONST_cost / n.
struct FailureParams {
  double mtbf_cost = 86400.0;
  double mttr_cost = 1.0;
  /// Desired success probability S for the attempts percentile (Eq. 6).
  double success_target = 0.95;
  /// Use exact Eq. 3 instead of the t/2 approximation (Eq. 4) for w(c).
  bool exact_wasted_time = false;

  /// Rate of correlated burst events per cost unit (lambda_g in the
  /// correlated model); 0 disables the correlated term entirely.
  double burst_rate_cost = 0.0;
  /// Fraction of the executing group a single burst takes down (fan-out).
  /// Scales the burst hazard the operator actually experiences; must be in
  /// (0, 1] (irrelevant while burst_rate_cost == 0).
  double burst_hit_fraction = 1.0;

  /// \brief Burst hazard per cost unit experienced by one operator:
  /// burst_hit_fraction * burst_rate_cost.
  double burst_hazard() const { return burst_hit_fraction * burst_rate_cost; }

  /// \brief Combined effective MTBF: 1 / (1/mtbf_cost + burst_hazard()).
  /// Returns mtbf_cost *exactly* (no reciprocal round-trip) when the burst
  /// hazard is zero, so zero correlation is bit-identical to the
  /// independent model.
  double effective_mtbf_cost() const;

  /// \brief Share of failures attributable to bursts:
  /// burst_hazard() / (1/mtbf_cost + burst_hazard()), in [0, 1). Used to
  /// price shared-fate re-reads: a burst that kills an operator likely also
  /// killed co-placed materialized inputs.
  double burst_failure_share() const;

  Status Validate() const;
};

/// \brief gamma(c) = e^{-t/MTBF}: probability an operator of duration t
/// completes without a failure (paper §3.5).
double SuccessProbability(double t, double mtbf_cost);

/// \brief eta(c) = 1 - gamma(c): probability of at least one failure while
/// the operator runs. Non-positive / non-finite mtbf_cost means failures are
/// certain for any t > 0.
double FailureProbability(double t, double mtbf_cost);

/// \brief Exact average wasted runtime per failure, Eq. 3:
///   w = MTBF - t / (e^{t/MTBF} - 1).
/// Numerically stable for t << MTBF (uses expm1) and saturates to MTBF for
/// t >> MTBF instead of overflowing e^{t/MTBF}.
double WastedTimeExact(double t, double mtbf_cost);

/// \brief The t/2 approximation of w(c) (Eq. 4), used by the paper's cost
/// model: already for MTBF > t the exact value is close to t/2.
double WastedTimeApprox(double t);

/// \brief w(c) under the given parameters (exact or approximate), using the
/// effective (burst-adjusted) MTBF.
double WastedTime(double t, const FailureParams& params);

/// \brief a(c), Eq. 6: number of *additional* attempts (beyond the first)
/// needed so the operator succeeds with probability >= S:
///   a = max(ln(1 - S) / ln(eta) - 1, 0).
/// Returns 0 when eta == 0 (no failures possible). success_target == 1.0 is
/// clamped one ulp below 1 so the result stays finite for finite t/mtbf.
double ExpectedAttempts(double t, double mtbf_cost, double success_target);

/// \brief T(c), Eq. 8: t + a*w + a*MTTR — the operator's total runtime under
/// mid-query failures at the S-percentile, priced against the effective
/// (burst-adjusted) MTBF.
double OperatorTotalRuntime(double t, const FailureParams& params);

/// \brief T(c) with an extra per-attempt recovery charge (shared-fate
/// refetch of co-placed materialized inputs): t + a*(w + MTTR + extra).
/// `extra_cost_per_attempt` must be >= 0; 0 reproduces the plain overload.
double OperatorTotalRuntime(double t, const FailureParams& params,
                            double extra_cost_per_attempt);

/// \brief T(c) under write-ahead-lineage recovery (arXiv:2403.08062): the
/// operator logs lineage before results flow downstream, so a failed
/// attempt replays from the last logged frontier instead of re-running the
/// lost work from scratch. Only `replay_factor` of the wasted time w(c) is
/// paid per attempt (replay reads the log sequentially — no recomputation):
///   T = t + a * (replay_factor * w + MTTR + extra).
/// `t` must already include the log-write overhead (the durable runtime).
/// replay_factor must be in [0, 1]; 1.0 reproduces OperatorTotalRuntime
/// bit-for-bit.
double OperatorTotalRuntimeWalReplay(double t, const FailureParams& params,
                                     double replay_factor,
                                     double extra_cost_per_attempt = 0.0);

/// \brief Probability that a query of duration t finishes without any
/// failure on a cluster of n nodes with per-node MTBF (Fig. 1):
///   P = e^{-t n / MTBF}.
/// Degenerate inputs are handled defensively: num_nodes <= 0 means no nodes
/// can fail (P = 1); a non-positive or non-finite MTBF means failures are
/// certain (P = 0 for t > 0).
double QuerySuccessProbability(double t, double mtbf_per_node, int num_nodes);

/// \brief QuerySuccessProbability with an additional cluster-wide correlated
/// burst rate (events per second): P = e^{-t (n/MTBF + lambda)}.
/// total_burst_rate <= 0 reproduces the independent value exactly.
double QuerySuccessProbabilityCorrelated(double t, double mtbf_per_node,
                                         int num_nodes,
                                         double total_burst_rate);

/// \brief Cumulative probability that an operator succeeds within N
/// additional attempts (Eq. 5 closed form): 1 - eta^{N+1}.
/// `attempts` below -1 is clamped to -1 (zero total attempts -> P = 0);
/// fractional attempts interpolate the geometric tail continuously.
double SuccessWithinAttempts(double t, double mtbf_cost, double attempts);

}  // namespace xdbft::ft
