// Closed-form failure mathematics of the cost model (paper §3.5 and §1
// footnote 1): success probabilities under Poisson failure arrivals, the
// expected wasted runtime per failure w(c) (Eq. 2-4), the attempts percentile
// a(c) (Eq. 5-6) and the per-operator total runtime T(c) (Eq. 8).
#pragma once

#include "common/status.h"

namespace xdbft::ft {

/// \brief Parameters of the failure process as seen by a partition-parallel
/// operator, in internal cost units (seconds x CONST_cost).
///
/// `mtbf_cost` must already be the *effective* MTBF of the executing node
/// group: with n independent nodes of per-node MTBF M, the first failure
/// arrives with rate n/M, i.e. mtbf_cost = M * CONST_cost / n.
struct FailureParams {
  double mtbf_cost = 86400.0;
  double mttr_cost = 1.0;
  /// Desired success probability S for the attempts percentile (Eq. 6).
  double success_target = 0.95;
  /// Use exact Eq. 3 instead of the t/2 approximation (Eq. 4) for w(c).
  bool exact_wasted_time = false;

  Status Validate() const;
};

/// \brief gamma(c) = e^{-t/MTBF}: probability an operator of duration t
/// completes without a failure (paper §3.5).
double SuccessProbability(double t, double mtbf_cost);

/// \brief eta(c) = 1 - gamma(c): probability of at least one failure while
/// the operator runs.
double FailureProbability(double t, double mtbf_cost);

/// \brief Exact average wasted runtime per failure, Eq. 3:
///   w = MTBF - t / (e^{t/MTBF} - 1).
/// Numerically stable for t << MTBF (uses expm1).
double WastedTimeExact(double t, double mtbf_cost);

/// \brief The t/2 approximation of w(c) (Eq. 4), used by the paper's cost
/// model: already for MTBF > t the exact value is close to t/2.
double WastedTimeApprox(double t);

/// \brief w(c) under the given parameters (exact or approximate).
double WastedTime(double t, const FailureParams& params);

/// \brief a(c), Eq. 6: number of *additional* attempts (beyond the first)
/// needed so the operator succeeds with probability >= S:
///   a = max(ln(1 - S) / ln(eta) - 1, 0).
/// Returns 0 when eta == 0 (no failures possible).
double ExpectedAttempts(double t, double mtbf_cost, double success_target);

/// \brief T(c), Eq. 8: t + a*w + a*MTTR — the operator's total runtime under
/// mid-query failures at the S-percentile.
double OperatorTotalRuntime(double t, const FailureParams& params);

/// \brief Probability that a query of duration t finishes without any
/// failure on a cluster of n nodes with per-node MTBF (Fig. 1):
///   P = e^{-t n / MTBF}.
double QuerySuccessProbability(double t, double mtbf_per_node, int num_nodes);

/// \brief Cumulative probability that an operator succeeds within N
/// additional attempts (Eq. 5 closed form): 1 - eta^{N+1}.
double SuccessWithinAttempts(double t, double mtbf_cost, double attempts);

}  // namespace xdbft::ft
