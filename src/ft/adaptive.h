// Mid-query adaptive re-optimization — the paper's second "future avenue
// of work" (§7): "we also want to look into more dynamic decisions for
// cases where data is skewed or statistics are hard to estimate (e.g., for
// user-defined functions)."
//
// The static scheme fixes the materialization configuration up front from
// estimated statistics. Adaptively, the engine can revisit the decision
// for each operator right before it runs: by then every upstream operator
// has executed, so its *true* costs and cardinalities are known. This
// module walks the plan in execution (topological) order, re-running
// findBestFTPlan at each free operator on a hybrid plan — true statistics
// for completed operators, estimates for the rest, previously made
// decisions pinned — and adopts the optimizer's choice for the current
// operator only.
#pragma once

#include "common/result.h"
#include "ft/enumerator.h"

namespace xdbft::ft {

/// \brief Outcome of the adaptive pass.
struct AdaptiveResult {
  /// The final (hybrid) materialization configuration.
  MaterializationConfig config;
  /// Free operators whose adaptive decision differs from the static plan
  /// computed on the estimated statistics.
  int decisions_changed = 0;
};

/// \brief Run the adaptive pass. `estimated` and `truth` must be
/// structurally identical plans (same operators/edges/constraints) whose
/// per-operator costs may differ (estimation errors); the returned
/// configuration is valid for both.
Result<AdaptiveResult> AdaptiveMaterialization(
    const plan::Plan& estimated, const plan::Plan& truth,
    const FtCostContext& context, const EnumerationOptions& options = {});

/// \brief Utility for experiments: a copy of `plan` with every operator's
/// tr/tm multiplied by an independent deterministic factor drawn
/// log-uniformly from [1/max_factor, max_factor] (simulating statistics
/// that are hard to estimate).
///
/// The factor of each operator is derived from (seed, structural identity
/// of the operator): a bottom-up hash over type, statistics and input
/// structure that ignores ids, labels and visit order. Relabeled or
/// renumbered but isomorphic plans therefore perturb identically, and the
/// draw for one operator never shifts because another operator was added
/// elsewhere in the plan.
plan::Plan PerturbStatistics(const plan::Plan& plan, double max_factor,
                             uint64_t seed);

/// \brief Outcome of a drift-triggered mid-query re-optimization.
struct DriftReoptimization {
  /// The configuration to continue with (== `current_config` when the
  /// drift stayed below the threshold).
  MaterializationConfig config;
  /// True iff findBestFTPlan was re-run under the observed statistics.
  bool reoptimized = false;
  /// Still-pending free operators whose decision changed vs
  /// `current_config`.
  int decisions_changed = 0;
  /// The measured relative drift (rate space, in [0, 1]).
  double drift = 0.0;
};

/// \brief Relative drift between two cluster-statistics snapshots, in
/// failure-rate space: max over the independent and the burst process of
/// |rate_a - rate_b| / max(rate_a, rate_b), each in [0, 1]. A burst rate of
/// 0 on one side and > 0 on the other is full drift (1.0) for that term.
double ClusterDrift(const cost::ClusterStats& assumed,
                    const cost::ClusterStats& observed);

/// \brief Mid-query re-optimization on MTBF/correlation drift: when the
/// drift between the assumed and the observed cluster statistics exceeds
/// `drift_threshold`, pin the decisions of already-`completed` operators
/// (their outputs exist or are forever lost — retracting them is free but
/// pointless) and re-run findBestFTPlan over the remaining free operators
/// under the observed statistics. Below the threshold the current
/// configuration is returned unchanged.
Result<DriftReoptimization> ReoptimizeOnDrift(
    const plan::Plan& plan, const MaterializationConfig& current_config,
    const std::vector<bool>& completed, const FtCostContext& assumed,
    const cost::ClusterStats& observed, double drift_threshold,
    const EnumerationOptions& options = {});

}  // namespace xdbft::ft
