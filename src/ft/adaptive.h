// Mid-query adaptive re-optimization — the paper's second "future avenue
// of work" (§7): "we also want to look into more dynamic decisions for
// cases where data is skewed or statistics are hard to estimate (e.g., for
// user-defined functions)."
//
// The static scheme fixes the materialization configuration up front from
// estimated statistics. Adaptively, the engine can revisit the decision
// for each operator right before it runs: by then every upstream operator
// has executed, so its *true* costs and cardinalities are known. This
// module walks the plan in execution (topological) order, re-running
// findBestFTPlan at each free operator on a hybrid plan — true statistics
// for completed operators, estimates for the rest, previously made
// decisions pinned — and adopts the optimizer's choice for the current
// operator only.
#pragma once

#include "common/result.h"
#include "ft/enumerator.h"

namespace xdbft::ft {

/// \brief Outcome of the adaptive pass.
struct AdaptiveResult {
  /// The final (hybrid) materialization configuration.
  MaterializationConfig config;
  /// Free operators whose adaptive decision differs from the static plan
  /// computed on the estimated statistics.
  int decisions_changed = 0;
};

/// \brief Run the adaptive pass. `estimated` and `truth` must be
/// structurally identical plans (same operators/edges/constraints) whose
/// per-operator costs may differ (estimation errors); the returned
/// configuration is valid for both.
Result<AdaptiveResult> AdaptiveMaterialization(
    const plan::Plan& estimated, const plan::Plan& truth,
    const FtCostContext& context, const EnumerationOptions& options = {});

/// \brief Utility for experiments: a copy of `plan` with every operator's
/// tr/tm multiplied by an independent deterministic factor drawn
/// log-uniformly from [1/max_factor, max_factor] (simulating statistics
/// that are hard to estimate).
plan::Plan PerturbStatistics(const plan::Plan& plan, double max_factor,
                             uint64_t seed);

}  // namespace xdbft::ft
