// Explainability for materialization decisions: for a chosen
// configuration, the marginal effect of toggling each free operator's
// m(o) — "what would it cost to (not) checkpoint this operator?" — which
// is how a DBA audits the cost-based scheme's choice.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "ft/ft_cost.h"

namespace xdbft::ft {

/// \brief Marginal effect of one free operator's materialization flag.
struct OperatorMarginal {
  plan::OpId op = plan::kInvalidOpId;
  std::string label;
  /// m(o) in the analyzed configuration.
  bool materialized = false;
  /// Estimated plan cost with the flag as configured.
  double cost_as_configured = 0.0;
  /// Estimated plan cost with only this flag toggled.
  double cost_toggled = 0.0;

  /// \brief How much the configured setting saves over toggling it
  /// (positive = the configured choice is better).
  double benefit() const { return cost_toggled - cost_as_configured; }
};

/// \brief Full marginal report for [plan, config].
struct MarginalAnalysis {
  double configured_cost = 0.0;
  std::vector<OperatorMarginal> operators;

  /// \brief Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief Compute the marginal analysis of `config` for `plan` under
/// `context`. Only free (enumerable) operators are analyzed.
Result<MarginalAnalysis> AnalyzeMarginals(const plan::Plan& plan,
                                          const MaterializationConfig& config,
                                          const FtCostContext& context);

}  // namespace xdbft::ft
