// Explainability for materialization decisions: for a chosen
// configuration, the marginal effect of toggling each free operator's
// m(o) — "what would it cost to (not) checkpoint this operator?" — which
// is how a DBA audits the cost-based scheme's choice.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "ft/ft_cost.h"

namespace xdbft::ft {

/// \brief Marginal effect of one free operator's materialization flag.
struct OperatorMarginal {
  plan::OpId op = plan::kInvalidOpId;
  std::string label;
  /// m(o) in the analyzed configuration.
  bool materialized = false;
  /// Estimated plan cost with the flag as configured.
  double cost_as_configured = 0.0;
  /// Estimated plan cost with only this flag toggled.
  double cost_toggled = 0.0;

  /// \brief How much the configured setting saves over toggling it
  /// (positive = the configured choice is better).
  double benefit() const { return cost_toggled - cost_as_configured; }
};

/// \brief Full marginal report for [plan, config].
struct MarginalAnalysis {
  double configured_cost = 0.0;
  std::vector<OperatorMarginal> operators;

  /// \brief Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief Compute the marginal analysis of `config` for `plan` under
/// `context`. Only free (enumerable) operators are analyzed.
Result<MarginalAnalysis> AnalyzeMarginals(const plan::Plan& plan,
                                          const MaterializationConfig& config,
                                          const FtCostContext& context);

/// \brief Observed counts from an actual run — either the in-process
/// FaultTolerantExecutor (engine::FtExecutionResult) or the cluster
/// simulator. Kept as plain numbers so the ft layer stays independent of
/// the engine/cluster layers.
struct ObservedExecution {
  /// Where the observation came from ("ft_executor", "simulator").
  std::string source;
  int failures = 0;
  /// Task attempts beyond the failure-free minimum (recovery work).
  int recovery_executions = 0;
  int task_executions = 0;
  double runtime_seconds = 0.0;
};

/// \brief Predicted failure behavior of one collapsed operator (§3.5).
struct PredictedOperator {
  std::string label;
  double t = 0.0;         ///< t(c), cost units
  double gamma = 0.0;     ///< success probability of one attempt
  double attempts = 0.0;  ///< a(c), Eq. 6
  double wasted = 0.0;    ///< w(c), Eq. 3/4
  double total = 0.0;     ///< T(c), Eq. 8
};

/// \brief Fig. 12-style predicted-vs-observed report for [plan, config]:
/// the cost model's per-collapsed-operator a(c)/w(c)/T(c) alongside the
/// attempt/recovery counts an instrumented execution actually recorded.
struct AccuracyReport {
  std::vector<PredictedOperator> operators;
  /// Dominant-path TPt — the plan's predicted runtime under failures.
  double predicted_runtime = 0.0;
  /// Sum of a(c) over collapsed operators: expected extra attempts per
  /// partition chain at the S-percentile.
  double predicted_attempts = 0.0;
  /// Observations to render next to the prediction (empty = none yet).
  std::vector<ObservedExecution> observed;

  std::string ToString() const;
};

/// \brief Build the predicted side of the accuracy report; callers append
/// ObservedExecution entries from executor/simulator runs.
Result<AccuracyReport> BuildAccuracyReport(const plan::Plan& plan,
                                           const MaterializationConfig& config,
                                           const FtCostContext& context);

}  // namespace xdbft::ft
