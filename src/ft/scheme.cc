#include "ft/scheme.h"

namespace xdbft::ft {

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kAllMat:
      return "all-mat";
    case SchemeKind::kNoMatLineage:
      return "no-mat (lineage)";
    case SchemeKind::kNoMatRestart:
      return "no-mat (restart)";
    case SchemeKind::kCostBased:
      return "cost-based";
  }
  return "?";
}

Result<SchemePlan> ApplyScheme(SchemeKind kind, const plan::Plan& plan,
                               const FtCostContext& context,
                               const EnumerationOptions& options) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(context.Validate());
  SchemePlan out;
  out.kind = kind;
  out.plan = plan;
  FtCostModel model(context);
  switch (kind) {
    case SchemeKind::kAllMat: {
      out.recovery = RecoveryMode::kFineGrained;
      out.config = MaterializationConfig::AllMat(plan);
      break;
    }
    case SchemeKind::kNoMatLineage: {
      out.recovery = RecoveryMode::kFineGrained;
      out.config = MaterializationConfig::NoMat(plan);
      break;
    }
    case SchemeKind::kNoMatRestart: {
      out.recovery = RecoveryMode::kFullRestart;
      out.config = MaterializationConfig::NoMat(plan);
      break;
    }
    case SchemeKind::kCostBased: {
      return ApplyCostBasedScheme({plan}, context, options);
    }
  }
  XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est,
                         model.Estimate(out.plan, out.config));
  out.estimated_cost = est.dominant_cost;
  out.placement_groups = std::move(est.placement_groups);
  return out;
}

Result<SchemePlan> ApplyCostBasedScheme(
    const std::vector<plan::Plan>& candidates, const FtCostContext& context,
    const EnumerationOptions& options) {
  FtPlanEnumerator enumerator(context, options);
  XDBFT_ASSIGN_OR_RETURN(FtPlanChoice choice,
                         enumerator.FindBest(candidates));
  SchemePlan out;
  out.kind = SchemeKind::kCostBased;
  out.recovery = RecoveryMode::kFineGrained;
  // Return the caller's plan, not the enumerator's working copy: the
  // pruning rules' kNeverMaterialize marks are an internal search detail
  // and would confuse downstream re-analysis (e.g. marginal reports).
  out.plan = candidates[choice.plan_index];
  out.plan_index = choice.plan_index;
  out.config = std::move(choice.config);
  out.estimated_cost = choice.estimated_cost;
  out.placement_groups = std::move(choice.placement_groups);
  return out;
}

}  // namespace xdbft::ft
