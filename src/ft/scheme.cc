#include "ft/scheme.h"

namespace xdbft::ft {

const char* SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kAllMat:
      return "all-mat";
    case SchemeKind::kNoMatLineage:
      return "no-mat (lineage)";
    case SchemeKind::kNoMatRestart:
      return "no-mat (restart)";
    case SchemeKind::kCostBased:
      return "cost-based";
    case SchemeKind::kWriteAheadLineage:
      return "write-ahead lineage";
  }
  return "?";
}

namespace {

/// Analytic T for a no-mat plan under *full-restart* recovery: the whole
/// query is one retry unit of duration makespan, killed by the first
/// failure of ANY node (rate n/MTBF — not the single-machine process the
/// fine-grained dominant-path model prices). Any burst event also kills
/// the query regardless of its fan-out, and the success target applies to
/// the one query-level process directly (no per-partition S^(1/n)
/// scaling).
Result<double> EstimateFullRestartCost(const plan::Plan& plan,
                                       const MaterializationConfig& config,
                                       const FtCostContext& context) {
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, config, context.model.pipe_constant));
  const double makespan = cp.MakespanNoFailure();
  FailureParams q = context.MakeFailureParams();
  q.mtbf_cost = context.cluster.mtbf_seconds * context.model.cost_constant /
                static_cast<double>(context.cluster.num_nodes);
  q.success_target = context.model.success_target;
  if (context.cluster.has_bursts()) {
    q.burst_hit_fraction = 1.0;
  }
  return OperatorTotalRuntime(makespan, q);
}

}  // namespace

Result<SchemePlan> ApplyScheme(SchemeKind kind, const plan::Plan& plan,
                               const FtCostContext& context,
                               const EnumerationOptions& options) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(context.Validate());
  SchemePlan out;
  out.kind = kind;
  out.plan = plan;
  FtCostContext ctx = context;
  switch (kind) {
    case SchemeKind::kAllMat: {
      out.recovery = RecoveryMode::kFineGrained;
      out.config = MaterializationConfig::AllMat(plan);
      break;
    }
    case SchemeKind::kNoMatLineage: {
      out.recovery = RecoveryMode::kFineGrained;
      out.config = MaterializationConfig::NoMat(plan);
      break;
    }
    case SchemeKind::kNoMatRestart: {
      out.recovery = RecoveryMode::kFullRestart;
      out.config = MaterializationConfig::NoMat(plan);
      // Full restart is priced as one query-level retry unit, matching the
      // simulator's RunFullRestart semantics; the shared fine-grained
      // estimate below would price the single-machine dominant path
      // instead and underestimate badly on large clusters.
      XDBFT_ASSIGN_OR_RETURN(
          out.estimated_cost,
          EstimateFullRestartCost(out.plan, out.config, ctx));
      return out;
    }
    case SchemeKind::kWriteAheadLineage: {
      out.recovery = RecoveryMode::kWalReplay;
      out.config = MaterializationConfig::NoMat(plan);
      // Cost under the WAL recovery discipline regardless of whether the
      // caller's model has it switched on: the scheme IS the discipline.
      ctx.model.wal_enabled = true;
      break;
    }
    case SchemeKind::kCostBased: {
      return ApplyCostBasedScheme({plan}, context, options);
    }
  }
  FtCostModel model(ctx);
  XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est,
                         model.Estimate(out.plan, out.config));
  out.estimated_cost = est.dominant_cost;
  out.placement_groups = std::move(est.placement_groups);
  return out;
}

Result<SchemePlan> ApplyCostBasedScheme(
    const std::vector<plan::Plan>& candidates, const FtCostContext& context,
    const EnumerationOptions& options) {
  FtPlanEnumerator enumerator(context, options);
  XDBFT_ASSIGN_OR_RETURN(FtPlanChoice choice,
                         enumerator.FindBest(candidates));
  SchemePlan out;
  out.kind = SchemeKind::kCostBased;
  // A WAL-enabled model mixes both disciplines: materialization points
  // break the plan into collapsed ops, and write-ahead lineage covers the
  // pipelined work inside each. The executed recovery mode follows the
  // model the costs were computed under.
  out.recovery = context.model.wal_enabled ? RecoveryMode::kWalReplay
                                           : RecoveryMode::kFineGrained;
  // Return the caller's plan, not the enumerator's working copy: the
  // pruning rules' kNeverMaterialize marks are an internal search detail
  // and would confuse downstream re-analysis (e.g. marginal reports).
  out.plan = candidates[choice.plan_index];
  out.plan_index = choice.plan_index;
  out.config = std::move(choice.config);
  out.estimated_cost = choice.estimated_cost;
  out.placement_groups = std::move(choice.placement_groups);
  return out;
}

}  // namespace xdbft::ft
