#include "ft/greedy.h"

namespace xdbft::ft {

Result<GreedyResult> GreedyMaterialization(const plan::Plan& plan,
                                           const FtCostContext& context) {
  XDBFT_RETURN_NOT_OK(plan.Validate());
  XDBFT_RETURN_NOT_OK(context.Validate());
  FtCostModel model(context);

  GreedyResult out;
  out.config = MaterializationConfig::NoMat(plan);
  XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate base,
                         model.Estimate(plan, out.config));
  out.estimated_cost = base.dominant_cost;

  const std::vector<plan::OpId> free_ops = EnumerableOperators(plan);
  while (true) {
    double best_cost = out.estimated_cost;
    plan::OpId best_op = plan::kInvalidOpId;
    for (plan::OpId id : free_ops) {
      MaterializationConfig flipped = out.config;
      flipped.set_materialized(id, !out.config.materialized(id));
      XDBFT_ASSIGN_OR_RETURN(FtPlanEstimate est,
                             model.Estimate(plan, flipped));
      if (est.dominant_cost < best_cost) {
        best_cost = est.dominant_cost;
        best_op = id;
      }
    }
    if (best_op == plan::kInvalidOpId) break;
    out.config.set_materialized(best_op, !out.config.materialized(best_op));
    out.estimated_cost = best_cost;
    ++out.steps;
  }
  return out;
}

}  // namespace xdbft::ft
