#include "ft/mat_config.h"

#include <algorithm>

#include "common/string_util.h"

namespace xdbft::ft {

using plan::MatConstraint;
using plan::OpId;
using plan::Plan;

namespace {

// Applies forced values: bound operators and sinks.
void ApplyConstraints(const Plan& plan, MaterializationConfig* config) {
  std::vector<bool> is_sink(plan.num_nodes(), true);
  for (const auto& n : plan.nodes()) {
    for (OpId in : n.inputs) is_sink[static_cast<size_t>(in)] = false;
  }
  for (const auto& n : plan.nodes()) {
    if (n.constraint == MatConstraint::kAlwaysMaterialize) {
      config->set_materialized(n.id, true);
    } else if (n.constraint == MatConstraint::kNeverMaterialize) {
      config->set_materialized(n.id, false);
    }
    if (is_sink[static_cast<size_t>(n.id)]) {
      // Query results are always produced, regardless of constraint.
      config->set_materialized(n.id, true);
    }
  }
}

}  // namespace

size_t MaterializationConfig::NumMaterialized() const {
  return static_cast<size_t>(std::count(mat_.begin(), mat_.end(), true));
}

MaterializationConfig MaterializationConfig::NoMat(const Plan& plan) {
  MaterializationConfig c(plan.num_nodes());
  ApplyConstraints(plan, &c);
  return c;
}

MaterializationConfig MaterializationConfig::AllMat(const Plan& plan) {
  MaterializationConfig c(plan.num_nodes());
  for (const auto& n : plan.nodes()) c.set_materialized(n.id, true);
  ApplyConstraints(plan, &c);
  return c;
}

MaterializationConfig MaterializationConfig::FromFreeMask(const Plan& plan,
                                                          uint64_t mask) {
  MaterializationConfig c(plan.num_nodes());
  const std::vector<OpId> free_ops = EnumerableOperators(plan);
  for (size_t i = 0; i < free_ops.size(); ++i) {
    if (mask & (uint64_t{1} << i)) c.set_materialized(free_ops[i], true);
  }
  ApplyConstraints(plan, &c);
  return c;
}

Status MaterializationConfig::Validate(const Plan& plan) const {
  if (mat_.size() != plan.num_nodes()) {
    return Status::InvalidArgument("config size does not match plan");
  }
  std::vector<bool> is_sink(plan.num_nodes(), true);
  for (const auto& n : plan.nodes()) {
    for (OpId in : n.inputs) is_sink[static_cast<size_t>(in)] = false;
  }
  for (const auto& n : plan.nodes()) {
    const bool m = materialized(n.id);
    if (is_sink[static_cast<size_t>(n.id)] && !m) {
      return Status::InvalidArgument(
          StrFormat("sink operator %d must be materialized", n.id));
    }
    if (n.constraint == MatConstraint::kNeverMaterialize && m &&
        !is_sink[static_cast<size_t>(n.id)]) {
      return Status::InvalidArgument(
          StrFormat("bound operator %d (m=0) is materialized", n.id));
    }
    if (n.constraint == MatConstraint::kAlwaysMaterialize && !m) {
      return Status::InvalidArgument(
          StrFormat("bound operator %d (m=1) is not materialized", n.id));
    }
  }
  return Status::OK();
}

std::string MaterializationConfig::ToString() const {
  std::string out = "{m:";
  bool first = true;
  for (size_t i = 0; i < mat_.size(); ++i) {
    if (mat_[i]) {
      out += first ? " " : ",";
      out += std::to_string(i);
      first = false;
    }
  }
  out += "}";
  return out;
}

std::vector<OpId> EnumerableOperators(const Plan& plan) {
  std::vector<bool> is_sink(plan.num_nodes(), true);
  for (const auto& n : plan.nodes()) {
    for (OpId in : n.inputs) is_sink[static_cast<size_t>(in)] = false;
  }
  std::vector<OpId> out;
  for (const auto& n : plan.nodes()) {
    if (n.is_free() && !is_sink[static_cast<size_t>(n.id)]) {
      out.push_back(n.id);
    }
  }
  return out;
}

}  // namespace xdbft::ft
