#include "ft/ft_cost.h"

namespace xdbft::ft {

PlacementResult ComputePlacement(const CollapsedPlan& cp,
                                 const PlacementParams& pparams,
                                 const FailureParams& fparams) {
  const size_t n = cp.num_ops();
  PlacementResult out;
  out.groups.assign(n, 0);
  out.placed_cost.assign(n, 0.0);
  out.refetch_cost.assign(n, 0.0);
  const int num_groups = pparams.num_groups > 0 ? pparams.num_groups : 1;
  // CollapsedIds are assigned in ascending topological order, so every
  // input of op(id) has an id < id and is already placed when we get here.
  for (size_t id = 0; id < n; ++id) {
    const CollapsedOp& op = cp.op(static_cast<CollapsedId>(id));
    const double t = op.total_cost();
    int best_group = 0;
    double best_total = 0.0;
    double best_placed = t;
    double best_refetch = 0.0;
    for (int g = 0; g < num_groups; ++g) {
      double remote = 0.0;     // materialized bytes read across groups
      double co_placed = 0.0;  // materialized bytes sharing fate with us
      for (CollapsedId input : op.inputs) {
        const double tm = cp.op(input).materialize_cost;
        if (out.groups[static_cast<size_t>(input)] == g) {
          co_placed += tm;
        } else {
          remote += tm;
        }
      }
      const double placed_t = t + pparams.remote_read_penalty * remote;
      const double refetch = pparams.burst_failure_share * co_placed;
      const double total = OperatorTotalRuntime(placed_t, fparams, refetch);
      if (g == 0 || total < best_total) {
        best_group = g;
        best_total = total;
        best_placed = placed_t;
        best_refetch = refetch;
      }
    }
    out.groups[id] = best_group;
    out.placed_cost[id] = best_placed;
    out.refetch_cost[id] = best_refetch;
  }
  return out;
}

double FtCostModel::OperatorCost(const CollapsedOp& c) const {
  return OperatorTotalRuntime(c.total_cost(), context_.MakeFailureParams());
}

double FtCostModel::PathCost(const CollapsedPlan& cp,
                             const CollapsedPath& path) const {
  const FailureParams params = context_.MakeFailureParams();
  const PlacementParams pparams = context_.MakePlacementParams();
  if (!pparams.active()) {
    double total = 0.0;
    for (CollapsedId id : path) {
      total += OperatorTotalRuntime(cp.op(id).total_cost(), params);
    }
    return total;
  }
  const PlacementResult placement = ComputePlacement(cp, pparams, params);
  double total = 0.0;
  for (CollapsedId id : path) {
    const size_t i = static_cast<size_t>(id);
    total += OperatorTotalRuntime(placement.placed_cost[i], params,
                                  placement.refetch_cost[i]);
  }
  return total;
}

Result<FtPlanEstimate> FtCostModel::Estimate(const CollapsedPlan& cp) const {
  XDBFT_RETURN_NOT_OK(context_.Validate());
  const FailureParams params = context_.MakeFailureParams();
  const PlacementParams pparams = context_.MakePlacementParams();
  FtPlanEstimate est;
  if (!pparams.active()) {
    est.paths_evaluated = cp.ForEachPath([&](const CollapsedPath& path) {
      double cost = 0.0;
      for (CollapsedId id : path) {
        cost += OperatorTotalRuntime(cp.op(id).total_cost(), params);
      }
      if (cost > est.dominant_cost) {
        est.dominant_cost = cost;
        est.dominant_path = path;
      }
      return true;
    });
  } else {
    const PlacementResult placement = ComputePlacement(cp, pparams, params);
    est.placement_groups = placement.groups;
    est.paths_evaluated = cp.ForEachPath([&](const CollapsedPath& path) {
      double cost = 0.0;
      for (CollapsedId id : path) {
        const size_t i = static_cast<size_t>(id);
        cost += OperatorTotalRuntime(placement.placed_cost[i], params,
                                     placement.refetch_cost[i]);
      }
      if (cost > est.dominant_cost) {
        est.dominant_cost = cost;
        est.dominant_path = path;
      }
      return true;
    });
  }
  if (est.paths_evaluated == 0) {
    return Status::InvalidArgument("collapsed plan has no execution paths");
  }
  return est;
}

Result<FtPlanEstimate> FtCostModel::Estimate(
    const plan::Plan& plan, const MaterializationConfig& config) const {
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, config, context_.model.pipe_constant));
  return Estimate(cp);
}

}  // namespace xdbft::ft
