#include "ft/ft_cost.h"

namespace xdbft::ft {

double FtCostModel::OperatorCost(const CollapsedOp& c) const {
  return OperatorTotalRuntime(c.total_cost(), context_.MakeFailureParams());
}

double FtCostModel::PathCost(const CollapsedPlan& cp,
                             const CollapsedPath& path) const {
  const FailureParams params = context_.MakeFailureParams();
  double total = 0.0;
  for (CollapsedId id : path) {
    total += OperatorTotalRuntime(cp.op(id).total_cost(), params);
  }
  return total;
}

Result<FtPlanEstimate> FtCostModel::Estimate(const CollapsedPlan& cp) const {
  XDBFT_RETURN_NOT_OK(context_.Validate());
  FtPlanEstimate est;
  est.paths_evaluated = cp.ForEachPath([&](const CollapsedPath& path) {
    const double cost = PathCost(cp, path);
    if (cost > est.dominant_cost) {
      est.dominant_cost = cost;
      est.dominant_path = path;
    }
    return true;
  });
  if (est.paths_evaluated == 0) {
    return Status::InvalidArgument("collapsed plan has no execution paths");
  }
  return est;
}

Result<FtPlanEstimate> FtCostModel::Estimate(
    const plan::Plan& plan, const MaterializationConfig& config) const {
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, config, context_.model.pipe_constant));
  return Estimate(cp);
}

}  // namespace xdbft::ft
