#include "ft/ft_cost.h"

namespace xdbft::ft {

double CollapsedOpTotalRuntime(double t, double lineage_volume,
                               const FailureParams& fparams,
                               const WalParams& wal,
                               double extra_cost_per_attempt) {
  // The disabled path must not touch t at all (adding 0.0 could flip
  // -0.0 and, more importantly, signals intent): bit-identical to the
  // pre-WAL model.
  if (!wal.enabled) {
    return OperatorTotalRuntime(t, fparams, extra_cost_per_attempt);
  }
  const double durable = t + wal.write_cost * lineage_volume;
  return OperatorTotalRuntimeWalReplay(durable, fparams, wal.replay_factor,
                                       extra_cost_per_attempt);
}

PlacementResult ComputePlacement(const CollapsedPlan& cp,
                                 const PlacementParams& pparams,
                                 const FailureParams& fparams,
                                 const WalParams& wal) {
  const size_t n = cp.num_ops();
  PlacementResult out;
  out.groups.assign(n, 0);
  out.placed_cost.assign(n, 0.0);
  out.refetch_cost.assign(n, 0.0);
  const int num_groups = pparams.num_groups > 0 ? pparams.num_groups : 1;
  // CollapsedIds are assigned in ascending topological order, so every
  // input of op(id) has an id < id and is already placed when we get here.
  for (size_t id = 0; id < n; ++id) {
    const CollapsedOp& op = cp.op(static_cast<CollapsedId>(id));
    const double t = op.total_cost();
    int best_group = 0;
    double best_total = 0.0;
    double best_placed = t;
    double best_refetch = 0.0;
    for (int g = 0; g < num_groups; ++g) {
      double remote = 0.0;     // materialized bytes read across groups
      double co_placed = 0.0;  // materialized bytes sharing fate with us
      for (CollapsedId input : op.inputs) {
        const double tm = cp.op(input).materialize_cost;
        if (out.groups[static_cast<size_t>(input)] == g) {
          co_placed += tm;
        } else {
          remote += tm;
        }
      }
      const double placed_t = t + pparams.remote_read_penalty * remote;
      const double refetch = pparams.burst_failure_share * co_placed;
      const double total = CollapsedOpTotalRuntime(
          placed_t, op.lineage_volume, fparams, wal, refetch);
      if (g == 0 || total < best_total) {
        best_group = g;
        best_total = total;
        best_placed = placed_t;
        best_refetch = refetch;
      }
    }
    out.groups[id] = best_group;
    out.placed_cost[id] = best_placed;
    out.refetch_cost[id] = best_refetch;
  }
  return out;
}

double FtCostModel::OperatorCost(const CollapsedOp& c) const {
  return CollapsedOpTotalRuntime(c.total_cost(), c.lineage_volume,
                                 context_.MakeFailureParams(),
                                 context_.MakeWalParams());
}

double FtCostModel::PathCost(const CollapsedPlan& cp,
                             const CollapsedPath& path) const {
  const FailureParams params = context_.MakeFailureParams();
  const PlacementParams pparams = context_.MakePlacementParams();
  const WalParams wal = context_.MakeWalParams();
  if (!pparams.active()) {
    double total = 0.0;
    for (CollapsedId id : path) {
      total += CollapsedOpTotalRuntime(cp.op(id).total_cost(),
                                       cp.op(id).lineage_volume, params, wal);
    }
    return total;
  }
  const PlacementResult placement =
      ComputePlacement(cp, pparams, params, wal);
  double total = 0.0;
  for (CollapsedId id : path) {
    const size_t i = static_cast<size_t>(id);
    total += CollapsedOpTotalRuntime(placement.placed_cost[i],
                                     cp.op(id).lineage_volume, params, wal,
                                     placement.refetch_cost[i]);
  }
  return total;
}

Result<FtPlanEstimate> FtCostModel::Estimate(const CollapsedPlan& cp) const {
  XDBFT_RETURN_NOT_OK(context_.Validate());
  const FailureParams params = context_.MakeFailureParams();
  const PlacementParams pparams = context_.MakePlacementParams();
  const WalParams wal = context_.MakeWalParams();
  FtPlanEstimate est;
  if (!pparams.active()) {
    est.paths_evaluated = cp.ForEachPath([&](const CollapsedPath& path) {
      double cost = 0.0;
      for (CollapsedId id : path) {
        cost += CollapsedOpTotalRuntime(cp.op(id).total_cost(),
                                        cp.op(id).lineage_volume, params,
                                        wal);
      }
      if (cost > est.dominant_cost) {
        est.dominant_cost = cost;
        est.dominant_path = path;
      }
      return true;
    });
  } else {
    const PlacementResult placement =
        ComputePlacement(cp, pparams, params, wal);
    est.placement_groups = placement.groups;
    est.paths_evaluated = cp.ForEachPath([&](const CollapsedPath& path) {
      double cost = 0.0;
      for (CollapsedId id : path) {
        const size_t i = static_cast<size_t>(id);
        cost += CollapsedOpTotalRuntime(placement.placed_cost[i],
                                        cp.op(id).lineage_volume, params,
                                        wal, placement.refetch_cost[i]);
      }
      if (cost > est.dominant_cost) {
        est.dominant_cost = cost;
        est.dominant_path = path;
      }
      return true;
    });
  }
  if (est.paths_evaluated == 0) {
    return Status::InvalidArgument("collapsed plan has no execution paths");
  }
  return est;
}

Result<FtPlanEstimate> FtCostModel::Estimate(
    const plan::Plan& plan, const MaterializationConfig& config) const {
  XDBFT_ASSIGN_OR_RETURN(
      CollapsedPlan cp,
      CollapsedPlan::Create(plan, config, context_.model.pipe_constant));
  return Estimate(cp);
}

}  // namespace xdbft::ft
