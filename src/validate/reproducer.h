// Reproducer files for crosscheck violations: a self-contained JSON
// artifact (plan text, materialization config, cluster statistics,
// simulator options, trace spec, generator seed) that `xdbft_crosscheck
// --replay <file>` re-executes deterministically. Written next to CI logs
// and uploaded as an artifact when the harness finds a violation.
#pragma once

#include <string>

#include "cluster/simulator.h"
#include "common/result.h"
#include "ft/mat_config.h"
#include "plan/plan.h"
#include "validate/generator.h"

namespace xdbft::validate {

/// \brief Everything needed to re-run one crosscheck case.
struct ReproCase {
  /// Name of the violated check (a key of the crosscheck registry).
  std::string check;
  /// Human-readable violation description.
  std::string detail;
  /// Generator seed the case came from.
  uint64_t seed = 0;
  /// True once the greedy minimizer has shrunk the case.
  bool minimized = false;
  /// "sim" cases carry the full plan below; "executor" cases are
  /// regenerated from `seed` alone (stage plans embed lambdas and cannot
  /// be serialized).
  std::string kind = "sim";

  plan::Plan plan;
  ft::MaterializationConfig config;
  cost::ClusterStats cluster;
  /// Scalar knobs only; the trace-recorder pointer is never serialized.
  cluster::SimulationOptions sim;
  TraceSpec trace;
};

/// \brief Serialize to the reproducer JSON document.
std::string ReproToJson(const ReproCase& c);

/// \brief Parse a reproducer document (inverse of ReproToJson).
Result<ReproCase> ReproFromJson(const std::string& text);

/// \brief Write `c` into `dir` (created if missing) as
/// repro-<check>-<seed>.json; returns the file path.
Result<std::string> WriteReproducer(const std::string& dir,
                                    const ReproCase& c);

/// \brief Load a reproducer file from disk.
Result<ReproCase> LoadReproducer(const std::string& path);

}  // namespace xdbft::validate
