#include "validate/reproducer.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "obs/json.h"
#include "plan/plan_text.h"

namespace xdbft::validate {

namespace {

const char* TraceKindName(TraceKind kind) {
  return kind == TraceKind::kBurst ? "burst" : "independent";
}

Result<TraceKind> TraceKindFromName(const std::string& name) {
  if (name == "burst") return TraceKind::kBurst;
  if (name == "independent") return TraceKind::kIndependent;
  return Status::InvalidArgument("unknown trace kind: " + name);
}

// `u64` as a JSON-safe decimal string (doubles cannot hold all of them).
std::string U64(uint64_t v) {
  return obs::JsonQuote(StrFormat("%llu", static_cast<unsigned long long>(v)));
}

Result<uint64_t> ParseU64(const obs::JsonValue& v) {
  if (!v.is_string()) return Status::InvalidArgument("expected u64 string");
  uint64_t out = 0;
  for (char ch : v.string_value) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument("bad u64 digit");
    }
    out = out * 10 + static_cast<uint64_t>(ch - '0');
  }
  return out;
}

Result<double> Num(const obs::JsonValue& obj, const std::string& key) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing number field: " + key);
  }
  return v->number_value;
}

Result<std::string> Str(const obs::JsonValue& obj, const std::string& key) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("missing string field: " + key);
  }
  return v->string_value;
}

}  // namespace

std::string ReproToJson(const ReproCase& c) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"xdbft_crosscheck\",\n";
  out << "  \"check\": " << obs::JsonQuote(c.check) << ",\n";
  out << "  \"detail\": " << obs::JsonQuote(c.detail) << ",\n";
  out << "  \"seed\": " << U64(c.seed) << ",\n";
  out << "  \"minimized\": " << (c.minimized ? "true" : "false") << ",\n";
  out << "  \"kind\": " << obs::JsonQuote(c.kind) << ",\n";
  out << "  \"plan_text\": " << obs::JsonQuote(plan::PlanToText(c.plan))
      << ",\n";
  out << "  \"materialized\": [";
  bool first = true;
  for (size_t i = 0; i < c.config.size(); ++i) {
    if (!c.config.materialized(static_cast<plan::OpId>(i))) continue;
    if (!first) out << ", ";
    out << i;
    first = false;
  }
  out << "],\n";
  out << "  \"cluster\": {\"num_nodes\": " << c.cluster.num_nodes
      << ", \"mtbf_seconds\": " << obs::JsonNumber(c.cluster.mtbf_seconds)
      << ", \"mttr_seconds\": " << obs::JsonNumber(c.cluster.mttr_seconds)
      << "},\n";
  out << "  \"sim\": {\"pipe_constant\": "
      << obs::JsonNumber(c.sim.pipe_constant)
      << ", \"max_restarts\": " << c.sim.max_restarts
      << ", \"partition_skew\": " << obs::JsonNumber(c.sim.partition_skew)
      << ", \"monitoring_interval\": "
      << obs::JsonNumber(c.sim.monitoring_interval)
      << ", \"checkpoint_interval\": "
      << obs::JsonNumber(c.sim.checkpoint_interval)
      << ", \"checkpoint_cost\": " << obs::JsonNumber(c.sim.checkpoint_cost)
      << "},\n";
  out << "  \"trace\": {\"kind\": "
      << obs::JsonQuote(TraceKindName(c.trace.kind))
      << ", \"count\": " << c.trace.count
      << ", \"base_seed\": " << U64(c.trace.base_seed);
  if (c.trace.kind == TraceKind::kBurst) {
    const cluster::BurstOptions& b = c.trace.burst;
    out << ", \"burst\": {\"mean_interval\": "
        << obs::JsonNumber(b.mean_interval)
        << ", \"horizon\": " << obs::JsonNumber(b.horizon)
        << ", \"width\": " << obs::JsonNumber(b.width)
        << ", \"min_nodes\": " << b.min_nodes
        << ", \"max_nodes\": " << b.max_nodes
        << ", \"background_mtbf\": " << obs::JsonNumber(b.background_mtbf)
        << "}";
  }
  out << "}\n";
  out << "}\n";
  return out.str();
}

Result<ReproCase> ReproFromJson(const std::string& text) {
  XDBFT_ASSIGN_OR_RETURN(obs::JsonValue root, obs::ParseJson(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("reproducer: not a JSON object");
  }
  ReproCase c;
  XDBFT_ASSIGN_OR_RETURN(c.check, Str(root, "check"));
  XDBFT_ASSIGN_OR_RETURN(c.detail, Str(root, "detail"));
  XDBFT_ASSIGN_OR_RETURN(c.kind, Str(root, "kind"));
  const obs::JsonValue* seed = root.Find("seed");
  if (seed == nullptr) return Status::InvalidArgument("missing seed");
  XDBFT_ASSIGN_OR_RETURN(c.seed, ParseU64(*seed));
  const obs::JsonValue* minimized = root.Find("minimized");
  c.minimized = minimized != nullptr && minimized->bool_value;

  XDBFT_ASSIGN_OR_RETURN(std::string plan_text, Str(root, "plan_text"));
  XDBFT_ASSIGN_OR_RETURN(c.plan, plan::PlanFromText(plan_text));
  // NoMat establishes the forced bound/sink flags; the listed free
  // operators are then switched on. Round-trips any valid config.
  c.config = ft::MaterializationConfig::NoMat(c.plan);
  const obs::JsonValue* mats = root.Find("materialized");
  if (mats == nullptr || !mats->is_array()) {
    return Status::InvalidArgument("missing materialized list");
  }
  for (const obs::JsonValue& m : mats->array) {
    if (!m.is_number()) return Status::InvalidArgument("bad materialized id");
    const auto id = static_cast<plan::OpId>(m.number_value);
    if (id < 0 || static_cast<size_t>(id) >= c.plan.num_nodes()) {
      return Status::InvalidArgument("materialized id out of range");
    }
    c.config.set_materialized(id, true);
  }
  XDBFT_RETURN_NOT_OK(c.config.Validate(c.plan));

  const obs::JsonValue* cl = root.Find("cluster");
  if (cl == nullptr) return Status::InvalidArgument("missing cluster");
  XDBFT_ASSIGN_OR_RETURN(double nodes, Num(*cl, "num_nodes"));
  c.cluster.num_nodes = static_cast<int>(nodes);
  XDBFT_ASSIGN_OR_RETURN(c.cluster.mtbf_seconds, Num(*cl, "mtbf_seconds"));
  XDBFT_ASSIGN_OR_RETURN(c.cluster.mttr_seconds, Num(*cl, "mttr_seconds"));

  const obs::JsonValue* sim = root.Find("sim");
  if (sim == nullptr) return Status::InvalidArgument("missing sim");
  XDBFT_ASSIGN_OR_RETURN(c.sim.pipe_constant, Num(*sim, "pipe_constant"));
  XDBFT_ASSIGN_OR_RETURN(double max_restarts, Num(*sim, "max_restarts"));
  c.sim.max_restarts = static_cast<int>(max_restarts);
  XDBFT_ASSIGN_OR_RETURN(c.sim.partition_skew, Num(*sim, "partition_skew"));
  XDBFT_ASSIGN_OR_RETURN(c.sim.monitoring_interval,
                         Num(*sim, "monitoring_interval"));
  XDBFT_ASSIGN_OR_RETURN(c.sim.checkpoint_interval,
                         Num(*sim, "checkpoint_interval"));
  XDBFT_ASSIGN_OR_RETURN(c.sim.checkpoint_cost,
                         Num(*sim, "checkpoint_cost"));

  const obs::JsonValue* trace = root.Find("trace");
  if (trace == nullptr) return Status::InvalidArgument("missing trace");
  XDBFT_ASSIGN_OR_RETURN(std::string kind_name, Str(*trace, "kind"));
  XDBFT_ASSIGN_OR_RETURN(c.trace.kind, TraceKindFromName(kind_name));
  XDBFT_ASSIGN_OR_RETURN(double count, Num(*trace, "count"));
  c.trace.count = static_cast<int>(count);
  const obs::JsonValue* base_seed = trace->Find("base_seed");
  if (base_seed == nullptr) {
    return Status::InvalidArgument("missing trace.base_seed");
  }
  XDBFT_ASSIGN_OR_RETURN(c.trace.base_seed, ParseU64(*base_seed));
  if (c.trace.kind == TraceKind::kBurst) {
    const obs::JsonValue* b = trace->Find("burst");
    if (b == nullptr) return Status::InvalidArgument("missing trace.burst");
    cluster::BurstOptions& burst = c.trace.burst;
    XDBFT_ASSIGN_OR_RETURN(burst.mean_interval, Num(*b, "mean_interval"));
    XDBFT_ASSIGN_OR_RETURN(burst.horizon, Num(*b, "horizon"));
    XDBFT_ASSIGN_OR_RETURN(burst.width, Num(*b, "width"));
    XDBFT_ASSIGN_OR_RETURN(double min_nodes, Num(*b, "min_nodes"));
    burst.min_nodes = static_cast<int>(min_nodes);
    XDBFT_ASSIGN_OR_RETURN(double max_nodes, Num(*b, "max_nodes"));
    burst.max_nodes = static_cast<int>(max_nodes);
    const obs::JsonValue* bg = b->Find("background_mtbf");
    // JSON cannot represent infinity (kNeverFails renders as null).
    burst.background_mtbf =
        bg != nullptr && bg->is_number() ? bg->number_value
                                         : cluster::kNeverFails;
  }
  return c;
}

Result<std::string> WriteReproducer(const std::string& dir,
                                    const ReproCase& c) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create reproducer dir " + dir + ": " +
                            ec.message());
  }
  const std::string path = StrFormat(
      "%s/repro-%s-%llu.json", dir.c_str(), c.check.c_str(),
      static_cast<unsigned long long>(c.seed));
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << ReproToJson(c);
  out.close();
  if (!out) return Status::Internal("short write to " + path);
  return path;
}

Result<ReproCase> LoadReproducer(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReproFromJson(buf.str());
}

}  // namespace xdbft::validate
