#include "validate/crosscheck.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "cluster/simulator.h"
#include "cluster/workload.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "engine/ft_executor.h"
#include "ft/checkpointing.h"
#include "ft/collapsed_plan.h"
#include "ft/enumerator.h"
#include "ft/failure_math.h"
#include "ft/ft_cost.h"
#include "ft/scheme.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "validate/generator.h"

namespace xdbft::validate {

namespace {

using cluster::ClusterSimulator;
using cluster::ClusterTrace;
using cluster::SimulationResult;
using ft::CollapsedPlan;
using ft::MaterializationConfig;
using ft::RecoveryMode;

constexpr double kRelTol = 1e-9;

/// Aborts the abort-cap check observed; RunCrosscheck surfaces the total
/// so a run where the abort path never fired is visible in the report.
std::atomic<int64_t> g_aborts_observed{0};

bool Near(double a, double b, double rtol) {
  return std::abs(a - b) <= rtol * std::max(std::abs(a), std::abs(b));
}

ft::FtCostContext MakeContext(const ReproCase& c) {
  ft::FtCostContext context;
  context.cluster = c.cluster;
  context.model.pipe_constant = c.sim.pipe_constant;
  return context;
}

ft::SchemePlan MakeScheme(const ReproCase& c, RecoveryMode recovery) {
  ft::SchemePlan scheme;
  scheme.kind = ft::SchemeKind::kCostBased;
  scheme.recovery = recovery;
  scheme.plan = c.plan;
  scheme.config = c.config;
  return scheme;
}

// ---------------------------------------------------------------------------
// Sim-case checks
// ---------------------------------------------------------------------------

/// Every completed simulated run is at least as long as the failure-free
/// critical path, and the abort/completed result fields are coherent.
std::optional<std::string> CheckRuntimeLowerBound(const ReproCase& c) {
  auto cp = CollapsedPlan::Create(c.plan, c.config, c.sim.pipe_constant);
  if (!cp.ok()) return "collapse failed: " + cp.status().ToString();
  const double makespan = cp->MakespanNoFailure();
  ClusterSimulator sim(c.cluster, c.sim);
  for (RecoveryMode mode :
       {RecoveryMode::kFineGrained, RecoveryMode::kFullRestart}) {
    std::vector<ClusterTrace> traces = c.trace.Materialize(c.cluster);
    for (size_t i = 0; i < traces.size(); ++i) {
      auto r = sim.Run(c.plan, c.config, mode, traces[i]);
      if (!r.ok()) return "sim failed: " + r.status().ToString();
      if (r->completed) {
        if (r->aborted != 0) {
          return StrFormat("trace %zu: completed but aborted=%d", i,
                           r->aborted);
        }
        if (r->runtime < makespan * (1.0 - kRelTol)) {
          return StrFormat(
              "trace %zu mode %d: runtime %.9g below makespan %.9g", i,
              static_cast<int>(mode), r->runtime, makespan);
        }
      } else {
        if (r->aborted != 1 || !Near(r->aborted_seconds, r->runtime, kRelTol)) {
          return StrFormat(
              "trace %zu mode %d: aborted run has aborted=%d "
              "aborted_seconds=%.9g runtime=%.9g",
              i, static_cast<int>(mode), r->aborted, r->aborted_seconds,
              r->runtime);
        }
      }
      if (r->restarts < 0 || r->failures_hit != r->restarts) {
        return StrFormat("trace %zu: restarts=%d failures_hit=%d", i,
                         r->restarts, r->failures_hit);
      }
    }
  }
  return std::nullopt;
}

/// RunMany must equal an explicit per-trace fold: completed-basis
/// mean/percentiles, aborted count, and mean burned time of aborted runs.
std::optional<std::string> CheckRunManyDifferential(const ReproCase& c) {
  ClusterSimulator sim(c.cluster, c.sim);
  for (RecoveryMode mode :
       {RecoveryMode::kFineGrained, RecoveryMode::kFullRestart}) {
    ft::SchemePlan scheme = MakeScheme(c, mode);
    std::vector<ClusterTrace> traces = c.trace.Materialize(c.cluster);
    auto agg = sim.RunMany(scheme, traces);
    if (!agg.ok()) return "RunMany failed: " + agg.status().ToString();

    std::vector<double> completed, aborted;
    int restarts = 0, failures = 0;
    std::vector<ClusterTrace> fold_traces = c.trace.Materialize(c.cluster);
    for (auto& trace : fold_traces) {
      auto r = sim.Run(scheme, trace);
      if (!r.ok()) return "sim failed: " + r.status().ToString();
      restarts += r->restarts;
      failures += r->failures_hit;
      (r->completed ? completed : aborted).push_back(r->runtime);
    }
    const std::vector<double>& basis = completed.empty() ? aborted : completed;
    const double want_runtime = Mean(basis);
    const double want_p50 = Percentile(basis, 50.0);
    const double want_p95 = Percentile(basis, 95.0);
    const double want_aborted_seconds = Mean(aborted);
    if (!Near(agg->runtime, want_runtime, kRelTol) ||
        !Near(agg->runtime_p50, want_p50, kRelTol) ||
        !Near(agg->runtime_p95, want_p95, kRelTol)) {
      return StrFormat(
          "mode %d: RunMany runtime/p50/p95 = %.9g/%.9g/%.9g, fold = "
          "%.9g/%.9g/%.9g",
          static_cast<int>(mode), agg->runtime, agg->runtime_p50,
          agg->runtime_p95, want_runtime, want_p50, want_p95);
    }
    if (agg->aborted != static_cast<int>(aborted.size()) ||
        !Near(agg->aborted_seconds, want_aborted_seconds, kRelTol)) {
      return StrFormat(
          "mode %d: RunMany aborted=%d aborted_seconds=%.9g, fold has %zu "
          "aborts with mean %.9g",
          static_cast<int>(mode), agg->aborted, agg->aborted_seconds,
          aborted.size(), want_aborted_seconds);
    }
    if (agg->restarts != restarts || agg->failures_hit != failures) {
      return StrFormat("mode %d: RunMany restarts=%d/%d fold=%d/%d",
                       static_cast<int>(mode), agg->restarts,
                       agg->failures_hit, restarts, failures);
    }
    if (agg->completed != aborted.empty()) {
      return StrFormat("mode %d: RunMany completed=%d with %zu aborts",
                       static_cast<int>(mode), agg->completed ? 1 : 0,
                       aborted.size());
    }
  }
  return std::nullopt;
}

/// With max_restarts = 1 any failure aborts the retry unit, so a completed
/// run must have seen zero restarts — the sharp form of the abort-cap
/// semantics in both recovery modes. (Reverting the fine-grained cap makes
/// failed runs complete with restarts > 0, which this flags immediately.)
std::optional<std::string> CheckAbortCap(const ReproCase& c) {
  ReproCase harsh = c;
  auto cp = CollapsedPlan::Create(c.plan, c.config, c.sim.pipe_constant);
  if (!cp.ok()) return "collapse failed: " + cp.status().ToString();
  double max_cost = 0.0;
  for (const auto& op : cp->ops()) {
    max_cost = std::max(max_cost, op.total_cost());
  }
  // MTBF at the biggest retry unit's duration: each attempt of that unit
  // fails with probability 1 - 1/e, so the abort path actually fires.
  harsh.cluster.mtbf_seconds = std::max(max_cost, 1.0);
  harsh.sim.max_restarts = 1;
  ClusterSimulator sim(harsh.cluster, harsh.sim);
  for (RecoveryMode mode :
       {RecoveryMode::kFineGrained, RecoveryMode::kFullRestart}) {
    std::vector<ClusterTrace> traces = harsh.trace.Materialize(harsh.cluster);
    for (size_t i = 0; i < traces.size(); ++i) {
      auto r = sim.Run(harsh.plan, harsh.config, mode, traces[i]);
      if (!r.ok()) return "sim failed: " + r.status().ToString();
      if (r->completed && r->restarts != 0) {
        return StrFormat(
            "trace %zu mode %d: completed with restarts=%d under "
            "max_restarts=1 (cap ignored)",
            i, static_cast<int>(mode), r->restarts);
      }
      if (!r->completed) {
        g_aborts_observed.fetch_add(1, std::memory_order_relaxed);
        if (r->aborted != 1 || r->restarts < 1 ||
            !Near(r->aborted_seconds, r->runtime, kRelTol)) {
          return StrFormat(
              "trace %zu mode %d: abort reported aborted=%d restarts=%d "
              "aborted_seconds=%.9g runtime=%.9g",
              i, static_cast<int>(mode), r->aborted, r->restarts,
              r->aborted_seconds, r->runtime);
        }
      }
    }
  }
  return std::nullopt;
}

/// The analytic estimate must dominate the failure-free makespan, and
/// every per-operator T(c) must dominate t(c).
std::optional<std::string> CheckAnalyticBounds(const ReproCase& c) {
  auto cp = CollapsedPlan::Create(c.plan, c.config, c.sim.pipe_constant);
  if (!cp.ok()) return "collapse failed: " + cp.status().ToString();
  ft::FtCostModel model(MakeContext(c));
  auto est = model.Estimate(*cp);
  if (!est.ok()) return "estimate failed: " + est.status().ToString();
  if (!std::isfinite(est->dominant_cost) || est->dominant_cost < 0.0) {
    return StrFormat("dominant cost not finite: %.9g", est->dominant_cost);
  }
  const double makespan = cp->MakespanNoFailure();
  if (est->dominant_cost < makespan * (1.0 - kRelTol)) {
    return StrFormat("dominant cost %.9g below makespan %.9g",
                     est->dominant_cost, makespan);
  }
  for (const auto& op : cp->ops()) {
    const double t = model.OperatorCost(op);
    if (t < op.total_cost() * (1.0 - kRelTol) || !std::isfinite(t)) {
      return StrFormat("T(c@%d)=%.9g below t(c)=%.9g", op.anchor, t,
                       op.total_cost());
    }
  }
  return std::nullopt;
}

/// Mean simulated runtime and the analytic dominant cost describe the same
/// quantity; in moderate failure regimes they must agree within a wide
/// band (the paper's own Fig. 12 reports the model is mildly optimistic).
std::optional<std::string> CheckAnalyticVsSim(const ReproCase& c) {
  if (c.trace.kind != TraceKind::kIndependent) return std::nullopt;
  if (c.sim.monitoring_interval != 0.0 || c.sim.checkpoint_interval != 0.0) {
    return std::nullopt;
  }
  auto cp = CollapsedPlan::Create(c.plan, c.config, c.sim.pipe_constant);
  if (!cp.ok()) return "collapse failed: " + cp.status().ToString();
  const double makespan = cp->MakespanNoFailure();
  const double eta =
      ft::FailureProbability(makespan, c.cluster.effective_mtbf());
  // Near-certain failure per attempt: runtimes are dominated by restart
  // tails and the S-percentile model diverges by design; skip.
  if (eta > 0.95) return std::nullopt;
  ft::FtCostModel model(MakeContext(c));
  auto est = model.Estimate(*cp);
  if (!est.ok()) return "estimate failed: " + est.status().ToString();
  ClusterSimulator sim(c.cluster, c.sim);
  ft::SchemePlan scheme = MakeScheme(c, RecoveryMode::kFineGrained);
  std::vector<ClusterTrace> traces = c.trace.Materialize(c.cluster);
  auto agg = sim.RunMany(scheme, traces);
  if (!agg.ok()) return "RunMany failed: " + agg.status().ToString();
  if (agg->aborted > 0) return std::nullopt;  // tail regime, not comparable
  const double ratio = agg->runtime / std::max(est->dominant_cost, 1e-12);
  // Band calibrated over 512 generator seeds: observed ratios spanned
  // [0.52, 2.79] with median 1.09 (the S-percentile model is pessimistic
  // for deep plans, optimistic for long ops under bursty traces).
  if (ratio < 0.3 || ratio > 4.0) {
    return StrFormat(
        "sim mean %.9g vs analytic %.9g (ratio %.3f, eta=%.3f, "
        "makespan=%.9g)",
        agg->runtime, est->dominant_cost, ratio, eta, makespan);
  }
  return std::nullopt;
}

/// Analytic cost is non-increasing in MTBF (with the paper's t/2 wasted-
/// time approximation) — deterministic, no simulation involved.
std::optional<std::string> CheckMtbfMonotonicAnalytic(const ReproCase& c) {
  ft::FtCostContext context = MakeContext(c);
  context.model.exact_wasted_time = false;
  double prev = std::numeric_limits<double>::infinity();
  for (double factor : {1.0, 4.0, 16.0, 64.0}) {
    ft::FtCostContext scaled = context;
    scaled.cluster.mtbf_seconds = c.cluster.mtbf_seconds * factor;
    ft::FtCostModel model(scaled);
    auto est = model.Estimate(c.plan, c.config);
    if (!est.ok()) return "estimate failed: " + est.status().ToString();
    if (est->dominant_cost > prev * (1.0 + kRelTol)) {
      return StrFormat(
          "cost increased with MTBF: %.9g -> %.9g at factor %.0f", prev,
          est->dominant_cost, factor);
    }
    prev = est->dominant_cost;
  }
  return std::nullopt;
}

/// Analytic cost is non-decreasing in MTTR.
std::optional<std::string> CheckMttrMonotonicAnalytic(const ReproCase& c) {
  double prev = -1.0;
  for (double factor : {1.0, 4.0, 16.0, 64.0}) {
    ft::FtCostContext scaled = MakeContext(c);
    scaled.cluster.mttr_seconds = c.cluster.mttr_seconds * factor;
    ft::FtCostModel model(scaled);
    auto est = model.Estimate(c.plan, c.config);
    if (!est.ok()) return "estimate failed: " + est.status().ToString();
    if (est->dominant_cost < prev * (1.0 - kRelTol)) {
      return StrFormat(
          "cost decreased with MTTR: %.9g -> %.9g at factor %.0f", prev,
          est->dominant_cost, factor);
    }
    prev = est->dominant_cost;
  }
  return std::nullopt;
}

/// Statistical counterpart (skipped in --quick): a 16x better MTBF must
/// not make the simulated mean runtime meaningfully worse. Wide slack —
/// per-trace monotonicity does NOT hold (a lucky run under the bad MTBF
/// can dodge a failure the good-MTBF run hits), only means converge.
std::optional<std::string> CheckSimMtbfMonotonic(const ReproCase& c) {
  if (c.trace.kind != TraceKind::kIndependent) return std::nullopt;
  if (c.sim.monitoring_interval != 0.0 || c.sim.checkpoint_interval != 0.0) {
    return std::nullopt;
  }
  ClusterSimulator lo_sim(c.cluster, c.sim);
  ft::SchemePlan scheme = MakeScheme(c, RecoveryMode::kFineGrained);
  std::vector<ClusterTrace> lo_traces = c.trace.Materialize(c.cluster);
  auto lo = lo_sim.RunMany(scheme, lo_traces);
  if (!lo.ok()) return "RunMany failed: " + lo.status().ToString();
  cost::ClusterStats hi_stats = c.cluster;
  hi_stats.mtbf_seconds *= 16.0;
  ClusterSimulator hi_sim(hi_stats, c.sim);
  std::vector<ClusterTrace> hi_traces = c.trace.Materialize(hi_stats);
  auto hi = hi_sim.RunMany(scheme, hi_traces);
  if (!hi.ok()) return "RunMany failed: " + hi.status().ToString();
  if (lo->aborted > 0 || hi->aborted > 0) return std::nullopt;
  if (hi->runtime > lo->runtime * 1.5 + 1e-6) {
    return StrFormat("16x MTBF made the mean worse: %.9g -> %.9g",
                     lo->runtime, hi->runtime);
  }
  return std::nullopt;
}

/// The exact enumeration (heuristic rules 1-2 off; rule 3 is provably
/// lossless) can never be beaten by any single configuration, and the
/// default heuristically-pruned search can never beat the exact one.
std::optional<std::string> CheckEnumOptimality(const ReproCase& c) {
  ft::FtCostContext context = MakeContext(c);
  ft::EnumerationOptions exact_opts;
  exact_opts.pruning.rule1 = false;
  exact_opts.pruning.rule2 = false;
  ft::FtPlanEnumerator exact(context, exact_opts);
  auto best = exact.FindBest(c.plan);
  if (!best.ok()) return "FindBest failed: " + best.status().ToString();
  ft::FtCostModel model(context);
  const MaterializationConfig candidates[] = {
      MaterializationConfig::AllMat(c.plan),
      MaterializationConfig::NoMat(c.plan), c.config};
  const char* names[] = {"all-mat", "no-mat", "random"};
  for (int i = 0; i < 3; ++i) {
    auto est = model.Estimate(c.plan, candidates[i]);
    if (!est.ok()) return "estimate failed: " + est.status().ToString();
    if (best->estimated_cost > est->dominant_cost * (1.0 + kRelTol)) {
      return StrFormat(
          "exact enumeration cost %.9g beaten by %s config %.9g",
          best->estimated_cost, names[i], est->dominant_cost);
    }
  }
  ft::FtPlanEnumerator pruned(context);  // default: all rules on
  auto pruned_best = pruned.FindBest(c.plan);
  if (!pruned_best.ok()) {
    return "pruned FindBest failed: " + pruned_best.status().ToString();
  }
  if (pruned_best->estimated_cost < best->estimated_cost * (1.0 - kRelTol)) {
    return StrFormat(
        "pruned search %.9g beat the exhaustive optimum %.9g (unsound "
        "pruning)",
        pruned_best->estimated_cost, best->estimated_cost);
  }
  return std::nullopt;
}

/// Collapsing a plan that consists of exactly the collapsed operators
/// (each materialized) must be the identity: same shape, costs, makespan
/// and path count.
std::optional<std::string> CheckCollapseIdempotent(const ReproCase& c) {
  auto cp = CollapsedPlan::Create(c.plan, c.config, c.sim.pipe_constant);
  if (!cp.ok()) return "collapse failed: " + cp.status().ToString();
  plan::Plan plan2("recollapsed");
  for (const auto& op : cp->ops()) {
    plan::PlanNode node;
    node.type = plan::OpType::kMapUdf;
    node.label = StrFormat("c@%d", op.anchor);
    node.runtime_cost = op.runtime_cost;
    node.materialize_cost = op.materialize_cost;
    for (ft::CollapsedId in : op.inputs) {
      node.inputs.push_back(static_cast<plan::OpId>(in));
    }
    plan2.AddNode(std::move(node));
  }
  auto cp2 = CollapsedPlan::Create(
      plan2, MaterializationConfig::AllMat(plan2), c.sim.pipe_constant);
  if (!cp2.ok()) return "re-collapse failed: " + cp2.status().ToString();
  if (cp2->num_ops() != cp->num_ops()) {
    return StrFormat("re-collapse changed op count: %zu -> %zu",
                     cp->num_ops(), cp2->num_ops());
  }
  for (size_t i = 0; i < cp->num_ops(); ++i) {
    const auto& a = cp->op(static_cast<ft::CollapsedId>(i));
    // Anchor of the re-collapsed op is the plan2 node id == original id.
    const auto& b = cp2->op(static_cast<ft::CollapsedId>(i));
    if (static_cast<size_t>(b.anchor) != i) {
      return StrFormat("re-collapsed op %zu anchored at %d", i, b.anchor);
    }
    if (!Near(a.total_cost(), b.total_cost(), kRelTol)) {
      return StrFormat("op %zu cost changed: %.9g -> %.9g", i,
                       a.total_cost(), b.total_cost());
    }
    std::vector<ft::CollapsedId> ain = a.inputs, bin = b.inputs;
    std::sort(ain.begin(), ain.end());
    std::sort(bin.begin(), bin.end());
    if (ain != bin) return StrFormat("op %zu edges changed", i);
  }
  if (!Near(cp->MakespanNoFailure(), cp2->MakespanNoFailure(), kRelTol)) {
    return StrFormat("makespan changed: %.9g -> %.9g",
                     cp->MakespanNoFailure(), cp2->MakespanNoFailure());
  }
  if (cp->CountPaths() != cp2->CountPaths()) {
    return StrFormat("path count changed: %zu -> %zu", cp->CountPaths(),
                     cp2->CountPaths());
  }
  return std::nullopt;
}

/// Randomized identities of the closed-form failure math.
std::optional<std::string> CheckFailureMath(const ReproCase& c) {
  uint64_t state = c.seed ^ 0x94d049bb133111ebULL;
  Rng rng(SplitMix64(state));
  for (int iter = 0; iter < 20; ++iter) {
    const double mtbf = LogUniform(rng, 1.0, 1.0e6);
    const double t = LogUniform(rng, mtbf * 1e-4, mtbf * 10.0);
    // Continuity of the exact wasted time across its small-x series
    // branch: values just below and above x = t/MTBF = 1e-9 agree.
    const double t_cut = mtbf * 1e-9;
    const double below = ft::WastedTimeExact(t_cut * 0.999, mtbf);
    const double above = ft::WastedTimeExact(t_cut * 1.001, mtbf);
    if (!Near(below, above, 1e-2) ||
        !Near(below, t_cut * 0.999 / 2.0, 1e-2)) {
      return StrFormat(
          "WastedTimeExact discontinuous at cutoff (mtbf=%.6g): %.12g vs "
          "%.12g",
          mtbf, below, above);
    }
    // SuccessWithinAttempts is a CDF in the attempt count.
    double prev = -1.0;
    for (double attempts : {0.0, 1.0, 2.0, 5.0, 20.0}) {
      const double p = ft::SuccessWithinAttempts(t, mtbf, attempts);
      if (p < prev - kRelTol || p < 0.0 || p > 1.0 + kRelTol) {
        return StrFormat(
            "SuccessWithinAttempts not monotone: p(%g)=%.12g after %.12g",
            attempts, p, prev);
      }
      prev = p;
    }
    // a(c) stays finite and non-negative as eta -> 1.
    const double a = ft::ExpectedAttempts(mtbf * 50.0, mtbf, 0.95);
    if (!std::isfinite(a) || a < 0.0) {
      return StrFormat("ExpectedAttempts(eta->1) = %.9g", a);
    }
    // Checkpointing with a single segment is exactly Eq. 8.
    ft::FailureParams params;
    params.mtbf_cost = mtbf;
    params.mttr_cost = LogUniform(rng, 0.1, 100.0);
    ft::CheckpointParams ckpt;
    ckpt.interval = t;  // one segment
    ckpt.checkpoint_cost = 123.0;
    const double with = ft::OperatorTotalRuntimeWithCheckpoints(t, ckpt,
                                                               params);
    const double without = ft::OperatorTotalRuntime(t, params);
    if (!Near(with, without, 1e-12)) {
      return StrFormat(
          "single-segment checkpointing %.12g != uncheckpointed %.12g",
          with, without);
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Correlated-failure model checks
// ---------------------------------------------------------------------------

/// Metamorphic identity: with correlation at zero the correlated machinery
/// reproduces the independent model bit for bit — the closed forms, every
/// per-operator T(c), Estimate and FindBest. Placement groups without a
/// remote-read penalty or a burst share must not move a single bit either.
std::optional<std::string> CheckCorrelationZeroIdentity(const ReproCase& c) {
  const ft::FtCostContext base = MakeContext(c);
  const ft::FailureParams params = base.MakeFailureParams();
  if (params.effective_mtbf_cost() != params.mtbf_cost) {
    return StrFormat(
        "effective_mtbf_cost %.17g != mtbf_cost %.17g without bursts",
        params.effective_mtbf_cost(), params.mtbf_cost);
  }
  if (params.burst_failure_share() != 0.0) {
    return StrFormat("burst_failure_share %.17g without bursts",
                     params.burst_failure_share());
  }
  auto cp = CollapsedPlan::Create(c.plan, c.config, c.sim.pipe_constant);
  if (!cp.ok()) return "collapse failed: " + cp.status().ToString();
  for (const auto& op : cp->ops()) {
    const double t = op.total_cost();
    const double two_arg = ft::OperatorTotalRuntime(t, params);
    const double three_arg = ft::OperatorTotalRuntime(t, params, 0.0);
    if (two_arg != three_arg) {
      return StrFormat("T(t=%.9g) with extra=0 is %.17g, without %.17g", t,
                       three_arg, two_arg);
    }
    const double independent =
        ft::QuerySuccessProbability(t, params.mtbf_cost,
                                    c.cluster.num_nodes);
    const double correlated = ft::QuerySuccessProbabilityCorrelated(
        t, params.mtbf_cost, c.cluster.num_nodes, 0.0);
    if (independent != correlated) {
      return StrFormat(
          "QuerySuccessProbabilityCorrelated(rate=0) %.17g != %.17g",
          correlated, independent);
    }
  }
  // Placement enabled but penalty-free: the placed search runs the
  // correlated code path, yet every cost it computes must be bit-identical
  // to the independent fast path.
  ft::FtCostContext placed = base;
  placed.cluster.num_placement_groups = 4;
  placed.cluster.remote_read_penalty = 0.0;
  auto base_est = ft::FtCostModel(base).Estimate(c.plan, c.config);
  auto placed_est = ft::FtCostModel(placed).Estimate(c.plan, c.config);
  if (!base_est.ok() || !placed_est.ok()) return "estimate failed";
  if (base_est->dominant_cost != placed_est->dominant_cost) {
    return StrFormat("penalty-free placement moved the estimate: %.17g -> %.17g",
                     base_est->dominant_cost, placed_est->dominant_cost);
  }
  ft::FtPlanEnumerator base_enum(base);
  ft::FtPlanEnumerator placed_enum(placed);
  auto base_best = base_enum.FindBest(c.plan);
  auto placed_best = placed_enum.FindBest(c.plan);
  if (!base_best.ok() || !placed_best.ok()) return "FindBest failed";
  if (base_best->estimated_cost != placed_best->estimated_cost) {
    return StrFormat(
        "penalty-free placement moved the optimum: %.17g -> %.17g",
        base_best->estimated_cost, placed_best->estimated_cost);
  }
  for (plan::OpId id = 0; id < static_cast<plan::OpId>(c.plan.num_nodes());
       ++id) {
    if (base_best->config.materialized(id) !=
        placed_best->config.materialized(id)) {
      return StrFormat("penalty-free placement flipped m(%d)", id);
    }
  }
  return std::nullopt;
}

/// Higher correlation never decreases the predicted T(c) of co-placed
/// operators: the dominant cost is non-decreasing in the burst rate and in
/// the burst fan-out (with the paper's t/2 wasted-time approximation, under
/// which T is monotone in the failure rate).
std::optional<std::string> CheckCorrelationMonotonic(const ReproCase& c) {
  ft::FtCostContext context = MakeContext(c);
  context.model.exact_wasted_time = false;
  context.cluster.burst_fanout = 1.0;
  double prev = -1.0;
  for (double interval :
       {0.0, c.cluster.mtbf_seconds * 64.0, c.cluster.mtbf_seconds * 16.0,
        c.cluster.mtbf_seconds * 4.0, c.cluster.mtbf_seconds}) {
    ft::FtCostContext scaled = context;
    scaled.cluster.burst_mtbf_seconds = interval;  // 0 = bursts off
    auto est = ft::FtCostModel(scaled).Estimate(c.plan, c.config);
    if (!est.ok()) return "estimate failed: " + est.status().ToString();
    if (est->dominant_cost < prev * (1.0 - kRelTol)) {
      return StrFormat(
          "cost decreased with burst rate: %.9g -> %.9g at interval %.9g",
          prev, est->dominant_cost, interval);
    }
    prev = est->dominant_cost;
  }
  context.cluster.burst_mtbf_seconds = c.cluster.mtbf_seconds * 4.0;
  prev = -1.0;
  for (double fanout : {0.25, 0.5, 1.0}) {
    ft::FtCostContext scaled = context;
    scaled.cluster.burst_fanout = fanout;
    auto est = ft::FtCostModel(scaled).Estimate(c.plan, c.config);
    if (!est.ok()) return "estimate failed: " + est.status().ToString();
    if (est->dominant_cost < prev * (1.0 - kRelTol)) {
      return StrFormat(
          "cost decreased with burst fanout: %.9g -> %.9g at fanout %.2f",
          prev, est->dominant_cost, fanout);
    }
    prev = est->dominant_cost;
  }
  return std::nullopt;
}

/// Under correlated burst traces the correlated model's predicted T(c)
/// must track the simulator strictly better than the independent model,
/// which only sees the (negligible) background process and predicts a
/// near-failure-free runtime. Summed |predicted - simulated p95| over a
/// small burst-interval grid; p95 is the simulated quantity T(c) bounds
/// (time to reach the success target S = 0.95).
std::optional<std::string> CheckCorrelatedModelVsSim(const ReproCase& c) {
  plan::PlanBuilder b("burst-chain");
  const plan::OpId s = b.Scan("s", 1e6, 100, 80.0);
  const plan::OpId f = b.Unary(plan::OpType::kFilter, "f", s, 70.0, 5.0);
  b.Unary(plan::OpType::kHashAggregate, "agg", f, 50.0, 5.0);
  const plan::Plan plan = std::move(b).Build();
  const MaterializationConfig config = MaterializationConfig::NoMat(plan);
  constexpr double kBackgroundMtbf = 1.0e8;  // bursts dominate
  const cost::ClusterStats stats =
      cost::MakeCluster(/*num_nodes=*/4, kBackgroundMtbf, /*mttr=*/10.0);

  ft::FtCostContext independent;
  independent.cluster = stats;
  ClusterSimulator sim(stats, cluster::SimulationOptions{});
  ft::SchemePlan scheme;
  scheme.kind = ft::SchemeKind::kCostBased;
  scheme.recovery = RecoveryMode::kFineGrained;
  scheme.plan = plan;
  scheme.config = config;

  double err_independent = 0.0;
  double err_correlated = 0.0;
  int grid_point = 0;
  for (double mean_interval : {150.0, 250.0, 400.0}) {
    ft::FtCostContext correlated = independent;
    correlated.cluster.burst_mtbf_seconds = mean_interval;
    correlated.cluster.burst_fanout = 1.0;  // every burst kills all nodes
    auto pred_ind = ft::FtCostModel(independent).Estimate(plan, config);
    auto pred_cor = ft::FtCostModel(correlated).Estimate(plan, config);
    if (!pred_ind.ok() || !pred_cor.ok()) return "estimate failed";

    cluster::BurstOptions burst;
    burst.mean_interval = mean_interval;
    burst.horizon = 1.0e6;
    burst.width = 1.0;
    burst.min_nodes = 4;
    burst.max_nodes = 4;
    burst.background_mtbf = kBackgroundMtbf;
    // 96 traces per grid point: the p95 of 24 samples is essentially the
    // second-largest draw and occasionally lands low enough to flip the
    // comparison on an unlucky seed (seed 140 of the 192-seed fuzz sweep
    // did exactly that); at 96 the worst seed in [0, 256) still leaves the
    // independent model behind by a wide margin.
    std::vector<ClusterTrace> traces = cluster::GenerateBurstTraceSet(
        stats, burst, /*count=*/96,
        c.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(++grid_point));
    auto agg = sim.RunMany(scheme, traces);
    if (!agg.ok()) return "RunMany failed: " + agg.status().ToString();
    if (agg->aborted > 0) continue;  // extreme tail; not comparable
    err_independent += std::abs(pred_ind->dominant_cost - agg->runtime_p95);
    err_correlated += std::abs(pred_cor->dominant_cost - agg->runtime_p95);
  }
  if (!(err_correlated < err_independent)) {
    return StrFormat(
        "correlated model no better than independent under bursts: "
        "sum|err| %.9g vs %.9g",
        err_correlated, err_independent);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Write-ahead lineage checks
// ---------------------------------------------------------------------------

/// Metamorphic identity: with a free log (write cost 0) and full-length
/// replay (factor 1) every WAL attempt spans exactly the operator's
/// duration, so the WAL simulator must reproduce the fine-grained
/// simulator bit for bit on the case's own plan, config and traces.
/// Intra-operator checkpointing is pinned off on both sides: WAL logs
/// lineage instead of writing state checkpoints, so its reference point
/// is the unsegmented fine-grained run (a fuzzed checkpoint_interval
/// would make fine-grained pay checkpoint costs and lose less work per
/// failure — a real semantic difference, not a bug).
std::optional<std::string> CheckWalReplayUnityIdentity(const ReproCase& c) {
  cluster::SimulationOptions fine_opts = c.sim;
  fine_opts.checkpoint_interval = 0.0;
  cluster::SimulationOptions wal_opts = fine_opts;
  wal_opts.wal_write_cost = 0.0;
  wal_opts.wal_replay_factor = 1.0;
  ClusterSimulator fine_sim(c.cluster, fine_opts);
  ClusterSimulator wal_sim(c.cluster, wal_opts);
  std::vector<ClusterTrace> fine_traces = c.trace.Materialize(c.cluster);
  std::vector<ClusterTrace> wal_traces = c.trace.Materialize(c.cluster);
  for (size_t i = 0; i < fine_traces.size(); ++i) {
    auto fine = fine_sim.Run(c.plan, c.config, RecoveryMode::kFineGrained,
                             fine_traces[i]);
    auto wal = wal_sim.Run(c.plan, c.config, RecoveryMode::kWalReplay,
                           wal_traces[i]);
    if (!fine.ok()) return "fine sim failed: " + fine.status().ToString();
    if (!wal.ok()) return "wal sim failed: " + wal.status().ToString();
    if (fine->runtime != wal->runtime ||
        fine->completed != wal->completed ||
        fine->restarts != wal->restarts ||
        fine->failures_hit != wal->failures_hit ||
        fine->aborted != wal->aborted) {
      return StrFormat(
          "trace %zu: unity-replay WAL diverges from fine-grained: "
          "runtime %.17g vs %.17g, restarts %d vs %d",
          i, wal->runtime, fine->runtime, wal->restarts, fine->restarts);
    }
  }
  return std::nullopt;
}

/// The WAL-aware analytic model (durable runtime = t + write_cost *
/// lineage volume; wasted time scaled by the replay factor) must track
/// the WAL simulator strictly better than the WAL-blind independent
/// model, which neither charges the log writes nor credits the cheap
/// replay. Summed |predicted - simulated p95| over a runtime-scale grid
/// of the pipelined chain shape, plus the analytic_vs_sim ratio band per
/// grid point — the same tolerance tier as correlated_model_vs_sim.
std::optional<std::string> CheckWalModelVsSim(const ReproCase& c) {
  const cost::ClusterStats stats =
      cost::MakeCluster(/*num_nodes=*/4, /*mtbf=*/1500.0, /*mttr=*/10.0);
  constexpr double kWriteCost = 0.3;
  constexpr double kReplayFactor = 0.25;
  double err_wal = 0.0;
  double err_blind = 0.0;
  int grid_point = 0;
  for (double scale : {1.0, 2.0, 4.0}) {
    ++grid_point;
    const plan::Plan plan = cluster::MakePipelinedQuery(/*depth=*/6, scale);
    const MaterializationConfig config = MaterializationConfig::NoMat(plan);
    ft::FtCostContext wal_ctx;
    wal_ctx.cluster = stats;
    wal_ctx.model.wal_enabled = true;
    wal_ctx.model.wal_write_cost = kWriteCost;
    wal_ctx.model.wal_replay_factor = kReplayFactor;
    ft::FtCostContext blind_ctx;
    blind_ctx.cluster = stats;
    auto pred_wal = ft::FtCostModel(wal_ctx).Estimate(plan, config);
    auto pred_blind = ft::FtCostModel(blind_ctx).Estimate(plan, config);
    if (!pred_wal.ok() || !pred_blind.ok()) return "estimate failed";

    cluster::SimulationOptions opts;
    opts.wal_write_cost = kWriteCost;
    opts.wal_replay_factor = kReplayFactor;
    ClusterSimulator sim(stats, opts);
    ft::SchemePlan scheme;
    scheme.kind = ft::SchemeKind::kWriteAheadLineage;
    scheme.recovery = RecoveryMode::kWalReplay;
    scheme.plan = plan;
    scheme.config = config;
    std::vector<ClusterTrace> traces;
    traces.reserve(96);
    for (uint64_t i = 0; i < 96; ++i) {
      traces.push_back(ClusterTrace::Generate(
          stats, c.seed * 0x9e3779b97f4a7c15ULL +
                     static_cast<uint64_t>(grid_point) * 1024ULL + i));
    }
    auto agg = sim.RunMany(scheme, traces);
    if (!agg.ok()) return "RunMany failed: " + agg.status().ToString();
    if (agg->aborted > 0) continue;  // extreme tail; not comparable
    const double ratio =
        agg->runtime_p95 / std::max(pred_wal->dominant_cost, 1e-12);
    if (ratio < 0.3 || ratio > 4.0) {
      return StrFormat(
          "scale %.0f: WAL analytic %.9g vs sim p95 %.9g (ratio %.3f)",
          scale, pred_wal->dominant_cost, agg->runtime_p95, ratio);
    }
    err_wal += std::abs(pred_wal->dominant_cost - agg->runtime_p95);
    err_blind += std::abs(pred_blind->dominant_cost - agg->runtime_p95);
  }
  if (!(err_wal < err_blind)) {
    return StrFormat(
        "WAL model no better than WAL-blind model: sum|err| %.9g vs %.9g",
        err_wal, err_blind);
  }
  return std::nullopt;
}

/// Past the break-even runtime, write-ahead lineage must strictly beat
/// restart-from-scratch on the pipelined long-runtime shape: the log
/// write is a bounded tax while the restart scheme's expected cost grows
/// without bound in the query runtime (paper §3.3 logic applied to the
/// new scheme). Compared on identical trace sets; a restart abort with a
/// completed WAL run counts as a win.
std::optional<std::string> CheckWalBeatsRestart(const ReproCase& c) {
  const cost::ClusterStats stats =
      cost::MakeCluster(/*num_nodes=*/4, /*mtbf=*/1200.0, /*mttr=*/10.0);
  // Deep in the long-runtime regime: makespan is several MTBFs, so a
  // full restart almost never finishes a clean pass.
  const plan::Plan plan =
      cluster::MakePipelinedQuery(/*depth=*/6, /*runtime_scale=*/8.0);
  const MaterializationConfig config = MaterializationConfig::NoMat(plan);
  cluster::SimulationOptions opts;
  opts.wal_write_cost = 0.3;
  opts.wal_replay_factor = 0.25;
  ClusterSimulator sim(stats, opts);
  ft::SchemePlan wal = MakeScheme(c, RecoveryMode::kWalReplay);
  wal.plan = plan;
  wal.config = config;
  ft::SchemePlan restart = MakeScheme(c, RecoveryMode::kFullRestart);
  restart.plan = plan;
  restart.config = config;
  auto make_traces = [&] {
    std::vector<ClusterTrace> traces;
    traces.reserve(64);
    for (uint64_t i = 0; i < 64; ++i) {
      traces.push_back(ClusterTrace::Generate(
          stats, c.seed * 0x9e3779b97f4a7c15ULL + 7919ULL + i));
    }
    return traces;
  };
  auto wal_traces = make_traces();
  auto restart_traces = make_traces();
  auto wal_agg = sim.RunMany(wal, wal_traces);
  if (!wal_agg.ok()) return "WAL RunMany failed: " + wal_agg.status().ToString();
  auto restart_agg = sim.RunMany(restart, restart_traces);
  if (!restart_agg.ok()) {
    return "restart RunMany failed: " + restart_agg.status().ToString();
  }
  if (wal_agg->aborted > restart_agg->aborted) {
    return StrFormat("WAL aborted more often than restart: %d vs %d",
                     wal_agg->aborted, restart_agg->aborted);
  }
  if (restart_agg->aborted > wal_agg->aborted) return std::nullopt;  // win
  if (!(wal_agg->runtime < restart_agg->runtime)) {
    return StrFormat(
        "WAL mean %.9g not below restart mean %.9g past break-even",
        wal_agg->runtime, restart_agg->runtime);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Executor differential
// ---------------------------------------------------------------------------

/// Kills the first `budget[p]` dispatches on partition p — a replay of a
/// failure trace's per-node failure counts against the real executor.
class BudgetInjector final : public engine::StageFailureInjector {
 public:
  explicit BudgetInjector(std::vector<int> budgets)
      : budgets_(std::move(budgets)) {}

  bool InjectFailure(int, int partition, int) override {
    if (partition < 0 ||
        partition >= static_cast<int>(budgets_.size()) ||
        budgets_[static_cast<size_t>(partition)] <= 0) {
      return false;
    }
    --budgets_[static_cast<size_t>(partition)];
    return true;
  }

 private:
  std::vector<int> budgets_;
};

bool SameTable(const exec::Table& a, const exec::Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (a.rows[i][j] != b.rows[i][j]) return false;
    }
  }
  return true;
}

/// The real executor run under a trace-derived injector: bit-identical
/// deterministic outcome at 1/2/8 threads, final table equal to the
/// failure-free run, and the accounting contract intact.
std::optional<std::string> CheckExecutorDifferential(const ReproCase& c) {
  uint64_t state = c.seed ^ 0xbf58476d1ce4e5b9ULL;
  Rng rng(SplitMix64(state));
  const int partitions = 2 + static_cast<int>(rng.NextBounded(3));
  const engine::StagePlan splan = RandomStagePlan(rng);
  const engine::PartitionedDatabase db = MakeDummyDatabase(partitions);
  const plan::Plan skeleton = splan.ToPlanSkeleton();
  const MaterializationConfig config =
      MaterializationConfig::FromFreeMask(skeleton, rng.Next());

  // Budgets: each node's failure count inside a fixed horizon of its
  // Poisson trace.
  const double mtbf = LogUniform(rng, 50.0, 500.0);
  ClusterTrace trace =
      ClusterTrace::Generate(cost::MakeCluster(partitions, mtbf), rng.Next());
  std::vector<int> budgets(static_cast<size_t>(partitions));
  int total_budget = 0;
  for (int k = 0; k < partitions; ++k) {
    budgets[static_cast<size_t>(k)] =
        static_cast<int>(trace.node(k).CountFailuresUntil(100.0));
    total_budget += budgets[static_cast<size_t>(k)];
  }
  const int max_attempts = total_budget + 10;

  engine::FaultTolerantExecutor ref_exec(&splan, &db);
  ref_exec.set_num_threads(1);
  auto ref = ref_exec.Execute(config, nullptr, max_attempts);
  if (!ref.ok()) return "failure-free run failed: " + ref.status().ToString();

  std::optional<engine::FtExecutionResult> baseline;
  for (int threads : {1, 2, 8}) {
    engine::FaultTolerantExecutor executor(&splan, &db);
    executor.set_num_threads(threads);
    BudgetInjector injector(budgets);
    auto r = executor.Execute(config, &injector, max_attempts);
    if (!r.ok()) {
      return StrFormat("threads=%d: %s", threads,
                       r.status().ToString().c_str());
    }
    if (!SameTable(r->result, ref->result)) {
      return StrFormat("threads=%d: result differs from failure-free run",
                       threads);
    }
    if (r->failures_injected != total_budget) {
      return StrFormat("threads=%d: injected %d of %d budgeted failures",
                       threads, r->failures_injected, total_budget);
    }
    if (r->task_executions !=
        ref->task_executions + r->recovery_executions) {
      return StrFormat(
          "threads=%d: task_executions=%d != failure-free %d + recovery %d",
          threads, r->task_executions, ref->task_executions,
          r->recovery_executions);
    }
    if (r->recovery_executions < r->failures_injected) {
      return StrFormat("threads=%d: recovery %d < failures %d", threads,
                       r->recovery_executions, r->failures_injected);
    }
    if (!baseline.has_value()) {
      baseline = std::move(*r);
      continue;
    }
    if (r->failures_injected != baseline->failures_injected ||
        r->recovery_executions != baseline->recovery_executions ||
        r->task_executions != baseline->task_executions ||
        r->rows_materialized != baseline->rows_materialized ||
        r->bytes_materialized != baseline->bytes_materialized ||
        r->rows_recomputed != baseline->rows_recomputed ||
        r->bytes_recomputed != baseline->bytes_recomputed ||
        r->rows_lost != baseline->rows_lost ||
        r->bytes_lost != baseline->bytes_lost ||
        !SameTable(r->result, baseline->result)) {
      return StrFormat(
          "threads=%d: deterministic fields differ from 1-thread run",
          threads);
    }
  }

  // All-mat destroys nothing: a failure only costs the killed attempt.
  BudgetInjector all_mat_injector(budgets);
  engine::FaultTolerantExecutor all_mat_exec(&splan, &db);
  all_mat_exec.set_num_threads(2);
  auto all_mat = all_mat_exec.Execute(MaterializationConfig::AllMat(skeleton),
                                      &all_mat_injector, max_attempts);
  if (!all_mat.ok()) {
    return "all-mat run failed: " + all_mat.status().ToString();
  }
  if (all_mat->rows_lost != 0 || all_mat->bytes_lost != 0 ||
      all_mat->seconds_lost != 0.0) {
    return StrFormat("all-mat run lost work: rows=%zu bytes=%llu sec=%.6g",
                     all_mat->rows_lost,
                     static_cast<unsigned long long>(all_mat->bytes_lost),
                     all_mat->seconds_lost);
  }
  if (!SameTable(all_mat->result, ref->result)) {
    return "all-mat result differs from failure-free run";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Registry, runner, minimizer
// ---------------------------------------------------------------------------

struct CheckEntry {
  const char* name;
  std::optional<std::string> (*fn)(const ReproCase&);
  /// Runs on "sim" cases; executor checks run on "executor" cases.
  bool sim;
  /// Skipped under --quick.
  bool statistical;
};

constexpr CheckEntry kChecks[] = {
    {"runtime_lower_bound", CheckRuntimeLowerBound, true, false},
    {"runmany_differential", CheckRunManyDifferential, true, false},
    {"abort_cap", CheckAbortCap, true, false},
    {"analytic_bounds", CheckAnalyticBounds, true, false},
    {"analytic_vs_sim", CheckAnalyticVsSim, true, false},
    {"mtbf_monotonic_analytic", CheckMtbfMonotonicAnalytic, true, false},
    {"mttr_monotonic_analytic", CheckMttrMonotonicAnalytic, true, false},
    {"sim_mtbf_monotonic", CheckSimMtbfMonotonic, true, true},
    {"enum_optimality", CheckEnumOptimality, true, false},
    {"collapse_idempotent", CheckCollapseIdempotent, true, false},
    {"failure_math", CheckFailureMath, true, false},
    {"correlation_zero_identity", CheckCorrelationZeroIdentity, true, false},
    {"correlation_monotonic", CheckCorrelationMonotonic, true, false},
    // Statistical: 3 grid points x 96 burst traces per seed is too heavy
    // for crosscheck_quick under TSan's ~20x slowdown (the fuzz leg and
    // full runs still assert it).
    {"correlated_model_vs_sim", CheckCorrelatedModelVsSim, true, true},
    {"wal_replay_unity_identity", CheckWalReplayUnityIdentity, true, false},
    // Statistical for the same reason as correlated_model_vs_sim: a grid
    // of 96-trace simulations per seed is too heavy for the sanitizer
    // quick legs.
    {"wal_model_vs_sim", CheckWalModelVsSim, true, true},
    {"wal_beats_restart", CheckWalBeatsRestart, true, true},
    {"executor_differential", CheckExecutorDifferential, false, false},
};

/// Remove node `victim` from the plan, splicing its inputs into its
/// consumers; the materialization flags of the surviving operators are
/// preserved. Fails when the reduced plan/config is invalid.
Result<ReproCase> RemoveNode(const ReproCase& c, plan::OpId victim) {
  if (c.plan.num_nodes() <= 1) {
    return Status::InvalidArgument("cannot shrink single-node plan");
  }
  plan::Plan reduced(c.plan.name());
  for (plan::OpId id = 0; id < static_cast<plan::OpId>(c.plan.num_nodes());
       ++id) {
    if (id == victim) continue;
    plan::PlanNode node = c.plan.node(id);
    std::vector<plan::OpId> inputs;
    for (plan::OpId in : node.inputs) {
      if (in == victim) {
        for (plan::OpId vin : c.plan.node(victim).inputs) {
          inputs.push_back(vin);
        }
      } else {
        inputs.push_back(in);
      }
    }
    // Remap ids past the victim and drop duplicate edges.
    std::vector<plan::OpId> remapped;
    for (plan::OpId in : inputs) {
      const plan::OpId mapped = in > victim ? in - 1 : in;
      if (std::find(remapped.begin(), remapped.end(), mapped) ==
          remapped.end()) {
        remapped.push_back(mapped);
      }
    }
    node.inputs = std::move(remapped);
    node.id = plan::kInvalidOpId;  // reassigned by AddNode
    reduced.AddNode(std::move(node));
  }
  XDBFT_RETURN_NOT_OK(reduced.Validate());
  ReproCase out = c;
  out.plan = reduced;
  out.config = MaterializationConfig::NoMat(reduced);
  for (plan::OpId id = 0; id < static_cast<plan::OpId>(c.plan.num_nodes());
       ++id) {
    if (id == victim) continue;
    const plan::OpId mapped = id > victim ? id - 1 : id;
    if (c.config.materialized(id)) out.config.set_materialized(mapped, true);
  }
  XDBFT_RETURN_NOT_OK(out.config.Validate(reduced));
  return out;
}

bool StillFails(const std::string& check, const ReproCase& c) {
  auto v = RunCheck(check, c);
  return v.ok() && v->has_value();
}

}  // namespace

std::vector<std::string> CheckNames() {
  std::vector<std::string> names;
  for (const CheckEntry& e : kChecks) names.emplace_back(e.name);
  return names;
}

Result<std::optional<std::string>> RunCheck(const std::string& check,
                                            const ReproCase& c) {
  for (const CheckEntry& e : kChecks) {
    if (check != e.name) continue;
    if (e.sim != (c.kind == "sim")) {
      return Status::InvalidArgument("check " + check +
                                     " does not apply to kind " + c.kind);
    }
    return e.fn(c);
  }
  return Status::NotFound("unknown check: " + check);
}

ReproCase MakeSimCase(uint64_t seed, int traces) {
  ReproCase c;
  c.kind = "sim";
  c.seed = seed;
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 0xc2b2ae3d27d4eb4fULL;
  Rng rng(SplitMix64(state));
  c.plan = RandomPlan(rng);
  c.cluster = RandomCluster(rng);
  c.config = RandomConfig(rng, c.plan);
  if (rng.NextDouble() < 0.25) c.sim.monitoring_interval = 2.0;
  if (rng.NextDouble() < 0.2) {
    c.sim.checkpoint_interval = LogUniform(rng, 50.0, 500.0);
    c.sim.checkpoint_cost = 1.0;
  }
  c.trace = RandomTraceSpec(rng, traces);
  return c;
}

Result<ReproCase> MinimizeCase(const ReproCase& c) {
  if (c.kind != "sim") return c;
  ReproCase cur = c;
  // Fewer traces first: each deletion re-runs the check on a smaller set.
  while (cur.trace.count > 1) {
    ReproCase candidate = cur;
    candidate.trace.count = std::max(1, cur.trace.count / 2);
    if (!StillFails(cur.check, candidate)) break;
    cur = candidate;
  }
  // Greedy operator deletion to a local minimum.
  bool progress = true;
  while (progress && cur.plan.num_nodes() > 1) {
    progress = false;
    for (plan::OpId victim = 0;
         victim < static_cast<plan::OpId>(cur.plan.num_nodes()); ++victim) {
      auto candidate = RemoveNode(cur, victim);
      if (!candidate.ok()) continue;
      candidate->check = cur.check;
      if (StillFails(cur.check, *candidate)) {
        cur = *candidate;
        progress = true;
        break;
      }
    }
  }
  cur.minimized = true;
  return cur;
}

Result<CrosscheckReport> RunCrosscheck(const CrosscheckOptions& options) {
  CrosscheckReport report;
  g_aborts_observed.store(0, std::memory_order_relaxed);
  for (int i = 0; i < options.seeds; ++i) {
    const uint64_t seed = options.seed_base + static_cast<uint64_t>(i);
    ReproCase sim_case = MakeSimCase(seed, options.traces);
    ReproCase exec_case;
    exec_case.kind = "executor";
    exec_case.seed = seed;
    for (const CheckEntry& entry : kChecks) {
      if (options.quick && entry.statistical) continue;
      const ReproCase& base = entry.sim ? sim_case : exec_case;
      std::optional<std::string> violation = entry.fn(base);
      ++report.checks_run;
      XDBFT_COUNTER_INC("crosscheck.checks");
      if (!violation.has_value()) continue;
      ++report.violations;
      XDBFT_COUNTER_INC("crosscheck.violations");
      ReproCase repro = base;
      repro.check = entry.name;
      repro.detail = *violation;
      XDBFT_ASSIGN_OR_RETURN(ReproCase minimized, MinimizeCase(repro));
      // Re-derive the detail for the minimized shape when it changed.
      if (minimized.plan.num_nodes() != repro.plan.num_nodes()) {
        auto v = RunCheck(entry.name, minimized);
        if (v.ok() && v->has_value()) minimized.detail = **v;
      }
      std::string message = StrFormat(
          "seed %llu [%s]: %s", static_cast<unsigned long long>(seed),
          entry.name, minimized.detail.c_str());
      if (!options.postmortem_dir.empty()) {
        obs::PostMortem pm;
        pm.tool = "crosscheck";
        pm.reason = message;
        pm.seed = seed;
        pm.replay = "xdbft_crosscheck --replay <reproducer>";
        pm.params["check"] = entry.name;
        pm.params["kind"] = minimized.kind;
        obs::CaptureProcessState(&pm);
        pm.reproducer_json = ReproToJson(minimized);
        Result<std::string> pm_path =
            obs::WritePostMortem(options.postmortem_dir, pm);
        if (pm_path.ok()) message += " (post-mortem: " + *pm_path + ")";
      }
      report.messages.push_back(std::move(message));
      if (options.write_reproducers) {
        XDBFT_ASSIGN_OR_RETURN(std::string path,
                               WriteReproducer(options.out_dir, minimized));
        report.repro_paths.push_back(path);
        XDBFT_COUNTER_INC("crosscheck.reproducers_written");
      }
    }
    ++report.seeds_run;
    XDBFT_COUNTER_INC("crosscheck.seeds");
  }
  report.aborts_observed =
      g_aborts_observed.load(std::memory_order_relaxed);
  return report;
}

Result<bool> ReplayReproducer(const std::string& path) {
  XDBFT_ASSIGN_OR_RETURN(ReproCase c, LoadReproducer(path));
  if (c.kind == "executor") {
    // Executor cases regenerate everything from the seed.
    ReproCase regenerated;
    regenerated.kind = "executor";
    regenerated.seed = c.seed;
    XDBFT_ASSIGN_OR_RETURN(auto v, RunCheck(c.check, regenerated));
    return v.has_value();
  }
  XDBFT_ASSIGN_OR_RETURN(auto v, RunCheck(c.check, c));
  return v.has_value();
}

}  // namespace xdbft::validate
