#include "validate/generator.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace xdbft::validate {

using plan::MatConstraint;
using plan::OpId;
using plan::OpType;

double LogUniform(Rng& rng, double lo, double hi) {
  return lo * std::exp(rng.NextDouble() * std::log(hi / lo));
}

plan::Plan RandomPlan(Rng& rng, const PlanGenOptions& opts) {
  const int n =
      opts.min_ops +
      static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(opts.max_ops - opts.min_ops) + 1));
  const int num_sources = n >= 4 && rng.NextDouble() < 0.5 ? 2 : 1;
  plan::PlanBuilder b("random");
  for (int i = 0; i < n; ++i) {
    const double tr = LogUniform(rng, opts.min_runtime, opts.max_runtime);
    const double tm = tr * (0.05 + rng.NextDouble() *
                                        (opts.max_mat_fraction - 0.05));
    const double rows = tr * 1000.0;
    if (i < num_sources) {
      b.Scan(StrFormat("t%d", i), rows, 8.0, tr);
      continue;
    }
    OpId id;
    if (i >= 2 && rng.NextDouble() < opts.p_binary) {
      OpId left = static_cast<OpId>(rng.NextBounded(
          static_cast<uint64_t>(i)));
      OpId right = static_cast<OpId>(rng.NextBounded(
          static_cast<uint64_t>(i)));
      if (left == right) right = (right + 1) % i;
      const OpType type =
          rng.NextDouble() < 0.7 ? OpType::kHashJoin : OpType::kUnion;
      id = b.Binary(type, StrFormat("op%d", i), std::min(left, right),
                    std::max(left, right), tr, tm, rows, 8.0);
    } else {
      static constexpr OpType kUnaryTypes[] = {
          OpType::kFilter, OpType::kProject, OpType::kHashAggregate,
          OpType::kSort, OpType::kMapUdf};
      const OpType type = kUnaryTypes[rng.NextBounded(5)];
      const OpId in = static_cast<OpId>(rng.NextBounded(
          static_cast<uint64_t>(i)));
      id = b.Unary(type, StrFormat("op%d", i), in, tr, tm, rows, 8.0);
    }
    if (rng.NextDouble() < opts.p_bound) {
      b.Constrain(id, rng.NextDouble() < 0.5
                          ? MatConstraint::kNeverMaterialize
                          : MatConstraint::kAlwaysMaterialize);
    }
  }
  return std::move(b).Build();
}

cost::ClusterStats RandomCluster(Rng& rng) {
  cost::ClusterStats stats;
  stats.num_nodes = 2 + static_cast<int>(rng.NextBounded(7));
  stats.mtbf_seconds = LogUniform(rng, 1200.0, 12.0 * 86400.0);
  stats.mttr_seconds = LogUniform(rng, 1.0, 60.0);
  return stats;
}

ft::MaterializationConfig RandomConfig(Rng& rng, const plan::Plan& plan) {
  return ft::MaterializationConfig::FromFreeMask(plan, rng.Next());
}

std::vector<cluster::ClusterTrace> TraceSpec::Materialize(
    const cost::ClusterStats& stats) const {
  if (kind == TraceKind::kBurst) {
    return cluster::GenerateBurstTraceSet(stats, burst, count, base_seed);
  }
  return cluster::GenerateTraceSet(stats, count, base_seed);
}

TraceSpec RandomTraceSpec(Rng& rng, int count) {
  TraceSpec spec;
  spec.count = count;
  spec.base_seed = rng.Next();
  if (rng.NextDouble() < 0.25) {
    spec.kind = TraceKind::kBurst;
    spec.burst.mean_interval = LogUniform(rng, 300.0, 30000.0);
    spec.burst.horizon = 1.0e6;
    spec.burst.width = LogUniform(rng, 0.5, 10.0);
    spec.burst.min_nodes = 2;
    spec.burst.max_nodes = 2 + static_cast<int>(rng.NextBounded(3));
    // Bursts ride on a thinned background process so the combined rate
    // stays in the regime the simulator handles in bounded time.
    spec.burst.background_mtbf = LogUniform(rng, 3600.0, 10.0 * 86400.0);
  }
  return spec;
}

namespace {

// Deterministic 64-bit mix used by the synthetic stage transforms; plain
// uint64 arithmetic (signed overflow would be UB).
uint64_t MixU64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

exec::Schema SyntheticSchema() {
  return exec::Schema{{"k", exec::ValueType::kInt64},
                      {"v", exec::ValueType::kInt64}};
}

}  // namespace

engine::StagePlan RandomStagePlan(Rng& rng, const StageGenOptions& opts) {
  const int n =
      opts.min_stages +
      static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(opts.max_stages - opts.min_stages) + 1));
  const int num_sources = n >= 4 && rng.NextDouble() < 0.5 ? 2 : 1;
  engine::StagePlan plan("random_stages");
  std::vector<bool> is_global;
  for (int i = 0; i < n; ++i) {
    engine::Stage stage;
    stage.label = StrFormat("s%d", i);
    if (i < num_sources) {
      // Source: synthesize rows_per_partition deterministic rows. The
      // partition index keys the data so shuffles/broadcasts downstream
      // actually move distinguishable rows around.
      const int rows = opts.rows_per_partition;
      const int stage_idx = i;
      stage.type = plan::OpType::kTableScan;
      stage.run = [rows, stage_idx](
                      int partition,
                      const std::vector<const exec::Table*>&)
          -> Result<exec::Table> {
        exec::Table out;
        out.schema = SyntheticSchema();
        const int p = partition < 0 ? 0 : partition;
        for (int r = 0; r < rows; ++r) {
          const int64_t k = static_cast<int64_t>(p) * 1000 + r;
          const int64_t v = static_cast<int64_t>(
              MixU64(static_cast<uint64_t>(k) * 31 +
                     static_cast<uint64_t>(stage_idx)) >>
              1);
          out.rows.push_back({exec::Value(k), exec::Value(v)});
        }
        return out;
      };
      plan.AddStage(std::move(stage));
      is_global.push_back(false);
      continue;
    }
    stage.global = rng.NextDouble() < opts.p_global;
    stage.type = stage.global ? plan::OpType::kReduceUdf
                              : plan::OpType::kMapUdf;
    const int num_inputs = i >= 2 && rng.NextDouble() < 0.4 ? 2 : 1;
    std::vector<int> producers;
    for (int e = 0; e < num_inputs; ++e) {
      int p = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
      if (e == 1 && p == producers[0]) p = (p + 1) % i;
      producers.push_back(p);
    }
    std::sort(producers.begin(), producers.end());
    for (int p : producers) {
      engine::StageInput input(p);
      const double draw = rng.NextDouble();
      // Global producers only support same-partition consumption (their
      // single output is slot 0); keep the draw so the choice of the
      // *other* edges is unaffected by producer globality.
      if (!is_global[static_cast<size_t>(p)]) {
        if (!stage.global && draw < opts.p_shuffle) {
          input.mode = engine::EdgeMode::kShuffle;
          input.shuffle_key = 0;  // hash on the k column
        } else if (draw < opts.p_shuffle + opts.p_broadcast) {
          input.mode = engine::EdgeMode::kBroadcast;
        }
      }
      stage.inputs.push_back(input);
    }
    // Transform: gather every input row, remix v deterministically, and
    // keep roughly half the rows so broadcast fan-out cannot explode the
    // row count across stages.
    const int stage_idx = i;
    stage.run = [stage_idx](int partition,
                            const std::vector<const exec::Table*>& inputs)
        -> Result<exec::Table> {
      exec::Table out;
      out.schema = SyntheticSchema();
      const uint64_t salt =
          static_cast<uint64_t>(stage_idx) * 0x9e3779b97f4a7c15ULL +
          static_cast<uint64_t>(partition + 1);
      for (const exec::Table* in : inputs) {
        for (const exec::Row& row : in->rows) {
          const uint64_t k = static_cast<uint64_t>(row[0].AsInt64());
          const uint64_t v = static_cast<uint64_t>(row[1].AsInt64());
          const uint64_t mixed = MixU64(v ^ salt ^ (k * 131));
          if ((mixed & 1) != 0) continue;  // deterministic thinning
          out.rows.push_back({exec::Value(row[0].AsInt64()),
                              exec::Value(static_cast<int64_t>(mixed >> 1))});
        }
      }
      return out;
    };
    const bool global = stage.global;
    plan.AddStage(std::move(stage));
    is_global.push_back(global);
  }
  return plan;
}

engine::PartitionedDatabase MakeDummyDatabase(int num_nodes) {
  engine::PartitionedDatabase db;
  db.num_nodes = num_nodes;
  return db;
}

}  // namespace xdbft::validate
