// Seeded random generators for the differential validation harness
// (tools/xdbft_crosscheck): plan DAGs with random shapes/costs, cluster
// statistics, materialization configurations, failure-trace specs
// (independent Poisson or correlated bursts), and synthetic executable
// StagePlans for the real-executor differential leg. Everything is a pure
// function of the Rng state, so a crosscheck case is reproducible from its
// seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/failure_trace.h"
#include "common/rng.h"
#include "cost/cost_params.h"
#include "engine/partitioned_table.h"
#include "engine/stage_plan.h"
#include "ft/mat_config.h"
#include "plan/plan.h"

namespace xdbft::validate {

/// \brief Knobs of the random plan generator.
struct PlanGenOptions {
  int min_ops = 3;
  int max_ops = 10;
  /// tr(o) is log-uniform in [min_runtime, max_runtime] seconds.
  double min_runtime = 1.0;
  double max_runtime = 600.0;
  /// tm(o) = tr(o) * uniform[0.05, max_mat_fraction].
  double max_mat_fraction = 0.6;
  /// Probability a non-source operator consumes two inputs.
  double p_binary = 0.35;
  /// Probability a free operator is instead bound (never/always split
  /// evenly), exercising the constraint handling of the enumerator.
  double p_bound = 0.15;
};

/// \brief Random DAG-structured plan: node 0 (and with two-source shapes
/// node 1) is a scan, every later node consumes one or two earlier nodes,
/// costs are log-uniform. The result always passes Plan::Validate().
plan::Plan RandomPlan(Rng& rng, const PlanGenOptions& opts = {});

/// \brief Random cluster: 2..8 nodes, per-node MTBF log-uniform in
/// [20 min, 12 days], MTTR log-uniform in [1 s, 60 s].
cost::ClusterStats RandomCluster(Rng& rng);

/// \brief Uniformly random materialization configuration (a random bitmask
/// over the plan's free operators; bound/sink operators forced as always).
ft::MaterializationConfig RandomConfig(Rng& rng, const plan::Plan& plan);

/// \brief Which failure process a crosscheck case injects.
enum class TraceKind : int { kIndependent, kBurst };

/// \brief Fully describes the trace set of a case; materialized on demand
/// so a reproducer file only needs these scalars.
struct TraceSpec {
  TraceKind kind = TraceKind::kIndependent;
  int count = 8;
  uint64_t base_seed = 0;
  /// kBurst only.
  cluster::BurstOptions burst;

  std::vector<cluster::ClusterTrace> Materialize(
      const cost::ClusterStats& stats) const;
};

/// \brief Random trace spec: mostly independent Poisson sets, with a
/// correlated-burst set (several nodes killed inside one short window)
/// roughly every fourth case.
TraceSpec RandomTraceSpec(Rng& rng, int count);

/// \brief Knobs of the random executable stage-plan generator.
struct StageGenOptions {
  int min_stages = 3;
  int max_stages = 6;
  /// Rows each source stage produces per partition.
  int rows_per_partition = 24;
  double p_global = 0.15;
  double p_broadcast = 0.2;
  double p_shuffle = 0.25;
};

/// \brief Random executable stage DAG over an (empty) dummy database:
/// source stages synthesize deterministic rows from (stage, partition),
/// downstream stages apply deterministic integer transforms, edges draw
/// random modes (same-partition / broadcast / shuffle) and stages are
/// occasionally global. Every task is a pure function of its inputs, so
/// the final table is bit-identical across thread counts and any
/// recovery schedule — exactly what the executor differential asserts.
engine::StagePlan RandomStagePlan(Rng& rng,
                                  const StageGenOptions& opts = {});

/// \brief A database with no tables: the synthetic stage plans read
/// nothing from storage, only `num_nodes` (the partition count).
engine::PartitionedDatabase MakeDummyDatabase(int num_nodes);

/// \brief Log-uniform draw in [lo, hi].
double LogUniform(Rng& rng, double lo, double hi);

}  // namespace xdbft::validate
