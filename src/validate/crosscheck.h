// The differential validation harness behind tools/xdbft_crosscheck: for
// each seed it generates a random case (plan, cluster, materialization
// config, failure traces) and cross-checks the three implementations of
// the paper's model against each other —
//   (a) the analytic cost layer (ft::FtCostModel, Eq. 7-8),
//   (b) the discrete-event ClusterSimulator averaged over trace sets,
//   (c) the real FaultTolerantExecutor driven by an injector replaying a
//       trace's per-node failure counts —
// plus metamorphic properties none of them should violate: runtime lower
// bounds, RunMany aggregation vs a hand fold, abort-cap semantics,
// analytic MTBF/MTTR monotonicity, enumeration optimality, collapse
// idempotence, failure-math identities, and bit-identical executor
// results across 1/2/8 threads. A violated check is shrunk by a greedy
// minimizer and written as a JSON reproducer for --replay.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "validate/reproducer.h"

namespace xdbft::validate {

/// \brief Harness configuration (mirrors the CLI flags).
struct CrosscheckOptions {
  /// Number of generator seeds; each seed is one sim case + one executor
  /// case.
  int seeds = 64;
  /// First seed (cases use seed_base .. seed_base + seeds - 1).
  uint64_t seed_base = 1;
  /// Traces per simulated case.
  int traces = 8;
  /// Skip the statistical checks that need large trace sets (the tier-1
  /// configuration; the fuzz CI leg runs without it).
  bool quick = false;
  /// Where violation reproducers are written.
  std::string out_dir = "crosscheck-repro";
  /// Disable reproducer files (used by unit tests).
  bool write_reproducers = true;
  /// When non-empty, every violation additionally writes a post-mortem
  /// bundle there (flight-recorder tail, metrics snapshot, the minimized
  /// reproducer embedded verbatim) and the violation message carries the
  /// bundle path.
  std::string postmortem_dir;
};

/// \brief Aggregate outcome of one harness run.
struct CrosscheckReport {
  int seeds_run = 0;
  int64_t checks_run = 0;
  int violations = 0;
  /// One human-readable line per violation.
  std::vector<std::string> messages;
  /// Reproducer files written (parallel to `messages` when enabled).
  std::vector<std::string> repro_paths;
  /// Abort-cap executions observed across all seeds (the abort path must
  /// actually trigger somewhere for the cap checks to mean anything).
  int64_t aborts_observed = 0;
};

/// \brief Run the harness. Violations are reported in the result, not as
/// an error status; the status is non-OK only for environmental failures
/// (e.g. the reproducer directory cannot be written).
Result<CrosscheckReport> RunCrosscheck(const CrosscheckOptions& options);

/// \brief Names of all registered checks.
std::vector<std::string> CheckNames();

/// \brief Run one named check against a case. nullopt = passed (or not
/// applicable); otherwise the violation detail.
Result<std::optional<std::string>> RunCheck(const std::string& check,
                                            const ReproCase& c);

/// \brief Build the deterministic sim case for `seed` (exposed so tests
/// and --replay of "executor" cases can regenerate cases).
ReproCase MakeSimCase(uint64_t seed, int traces);

/// \brief Greedy shrink of a failing sim case: halve the trace count and
/// repeatedly delete plan operators while the named check still fails.
/// Executor cases are returned unchanged (their plan is regenerated from
/// the seed and cannot be edited).
Result<ReproCase> MinimizeCase(const ReproCase& c);

/// \brief Re-run a written reproducer. Returns true when the recorded
/// violation still reproduces.
Result<bool> ReplayReproducer(const std::string& path);

}  // namespace xdbft::validate
