#include "optimizer/statistics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/math_util.h"

namespace xdbft::optimizer {

using exec::Table;
using exec::Value;
using exec::ValueType;

Result<const ColumnStats*> TableStats::Find(const std::string& column) const {
  for (const auto& c : columns) {
    if (c.name == column) return &c;
  }
  return Status::NotFound("no statistics for column '" + column + "'");
}

Result<TableStats> AnalyzeTable(const Table& table,
                                int histogram_buckets) {
  if (histogram_buckets <= 0) {
    return Status::InvalidArgument("histogram_buckets must be positive");
  }
  TableStats out;
  out.row_count = table.num_rows();
  const size_t ncols = table.schema.num_columns();
  out.columns.resize(ncols);

  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats& cs = out.columns[c];
    cs.name = table.schema.column(static_cast<int>(c)).name;
    cs.row_count = table.num_rows();

    std::unordered_set<size_t> distinct_hashes;
    bool any_numeric = false;
    double min = 0.0, max = 0.0;
    for (const auto& row : table.rows) {
      const Value& v = row[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      if (cs.type == ValueType::kNull) cs.type = v.type();
      distinct_hashes.insert(v.Hash());
      if (v.type() == ValueType::kInt64 ||
          v.type() == ValueType::kDouble) {
        const double d = v.AsDouble();
        if (!any_numeric) {
          min = max = d;
          any_numeric = true;
        } else {
          min = std::min(min, d);
          max = std::max(max, d);
        }
      }
    }
    cs.distinct_count = distinct_hashes.size();
    if (!cs.is_numeric() || !any_numeric) continue;
    cs.min = min;
    cs.max = max;
    cs.histogram.assign(static_cast<size_t>(histogram_buckets), 0);
    const double width = (max - min) / histogram_buckets;
    for (const auto& row : table.rows) {
      const Value& v = row[c];
      if (v.is_null()) continue;
      size_t bucket =
          width <= 0.0
              ? 0
              : static_cast<size_t>((v.AsDouble() - min) / width);
      bucket = std::min(bucket,
                        static_cast<size_t>(histogram_buckets - 1));
      ++cs.histogram[bucket];
    }
  }
  return out;
}

namespace {

constexpr double kDefaultInequalitySelectivity = 1.0 / 3.0;

double NonNullCount(const ColumnStats& stats) {
  return static_cast<double>(stats.row_count - stats.null_count);
}

}  // namespace

double EstimateLessThan(const ColumnStats& stats, double value) {
  if (stats.row_count == 0) return 0.0;
  if (!stats.is_numeric() || stats.histogram.empty()) {
    return kDefaultInequalitySelectivity;
  }
  if (value <= stats.min) return 0.0;
  if (value > stats.max) return 1.0;
  const double non_null = NonNullCount(stats);
  if (non_null == 0.0) return 0.0;
  const double width =
      (stats.max - stats.min) / static_cast<double>(stats.histogram.size());
  if (width <= 0.0) {
    // Single-point domain.
    return value > stats.min ? 1.0 : 0.0;
  }
  const double pos = (value - stats.min) / width;
  const size_t full = std::min(static_cast<size_t>(pos),
                               stats.histogram.size());
  double rows = 0.0;
  for (size_t b = 0; b < full; ++b) {
    rows += static_cast<double>(stats.histogram[b]);
  }
  if (full < stats.histogram.size()) {
    // Linear interpolation inside the partial bucket.
    rows += (pos - static_cast<double>(full)) *
            static_cast<double>(stats.histogram[full]);
  }
  return Clamp(rows / non_null, 0.0, 1.0);
}

double EstimateEquals(const ColumnStats& stats, double value) {
  if (stats.row_count == 0 || stats.distinct_count == 0) return 0.0;
  if (!stats.is_numeric() || stats.histogram.empty()) {
    return 1.0 / static_cast<double>(stats.distinct_count);
  }
  if (value < stats.min || value > stats.max) return 0.0;
  // Bucket density spread over the column's distinct values per bucket.
  const double non_null = NonNullCount(stats);
  const double width =
      (stats.max - stats.min) / static_cast<double>(stats.histogram.size());
  size_t bucket = width <= 0.0 ? 0
                               : static_cast<size_t>((value - stats.min) /
                                                     width);
  bucket = std::min(bucket, stats.histogram.size() - 1);
  const double distinct_per_bucket =
      std::max(1.0, static_cast<double>(stats.distinct_count) /
                        static_cast<double>(stats.histogram.size()));
  return Clamp(static_cast<double>(stats.histogram[bucket]) /
                   distinct_per_bucket / std::max(non_null, 1.0),
               0.0, 1.0);
}

double EstimateRange(const ColumnStats& stats, double lo, double hi) {
  if (hi <= lo) return 0.0;
  return Clamp(EstimateLessThan(stats, hi) - EstimateLessThan(stats, lo),
               0.0, 1.0);
}

double EstimateJoinCardinality(size_t left_rows, const ColumnStats& left_key,
                               size_t right_rows,
                               const ColumnStats& right_key) {
  const double ndv = static_cast<double>(
      std::max<size_t>(1, std::max(left_key.distinct_count,
                                   right_key.distinct_count)));
  return static_cast<double>(left_rows) * static_cast<double>(right_rows) /
         ndv;
}

}  // namespace xdbft::optimizer
