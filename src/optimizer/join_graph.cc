#include "optimizer/join_graph.h"


#include "common/string_util.h"

namespace xdbft::optimizer {

int JoinGraph::AddRelation(Relation r) {
  rels_.push_back(std::move(r));
  return static_cast<int>(rels_.size()) - 1;
}

Status JoinGraph::AddEdge(int left, int right, double selectivity,
                          std::string predicate) {
  if (left < 0 || left >= num_relations() || right < 0 ||
      right >= num_relations() || left == right) {
    return Status::InvalidArgument("invalid edge endpoints");
  }
  if (!(selectivity > 0.0) || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in (0, 1]");
  }
  edges_.push_back(JoinEdge{left, right, selectivity, std::move(predicate)});
  return Status::OK();
}

Status JoinGraph::Validate() const {
  if (rels_.empty()) return Status::InvalidArgument("no relations");
  if (rels_.size() > 20) {
    return Status::InvalidArgument("at most 20 relations supported");
  }
  for (const auto& r : rels_) {
    if (!(r.rows > 0.0)) {
      return Status::InvalidArgument("relation " + r.name +
                                     " has non-positive cardinality");
    }
  }
  if (!Connected(AllRels())) {
    return Status::InvalidArgument(
        "join graph is not connected (query would need cross products)");
  }
  return Status::OK();
}

bool JoinGraph::Connected(RelSet set) const {
  if (set == 0) return false;
  const RelSet first = set & (~set + 1);  // lowest bit
  RelSet reached = first;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& e : edges_) {
      const RelSet l = RelSet{1} << e.left;
      const RelSet r = RelSet{1} << e.right;
      if ((l | r) & ~set) continue;  // edge leaves the subset
      if ((reached & l) && !(reached & r)) {
        reached |= r;
        grew = true;
      } else if ((reached & r) && !(reached & l)) {
        reached |= l;
        grew = true;
      }
    }
  }
  return reached == set;
}

bool JoinGraph::HasCrossEdge(RelSet a, RelSet b) const {
  for (const auto& e : edges_) {
    const RelSet l = RelSet{1} << e.left;
    const RelSet r = RelSet{1} << e.right;
    if (((l & a) && (r & b)) || ((l & b) && (r & a))) return true;
  }
  return false;
}

double JoinGraph::Cardinality(RelSet set) const {
  double card = 1.0;
  for (int i = 0; i < num_relations(); ++i) {
    if (set & (RelSet{1} << i)) card *= rels_[static_cast<size_t>(i)].rows;
  }
  for (const auto& e : edges_) {
    const RelSet l = RelSet{1} << e.left;
    const RelSet r = RelSet{1} << e.right;
    if ((l & set) && (r & set)) card *= e.selectivity;
  }
  return card;
}

double JoinGraph::CrossSelectivity(RelSet a, RelSet b) const {
  double sel = 1.0;
  for (const auto& e : edges_) {
    const RelSet l = RelSet{1} << e.left;
    const RelSet r = RelSet{1} << e.right;
    if (((l & a) && (r & b)) || ((l & b) && (r & a))) sel *= e.selectivity;
  }
  return sel;
}

double JoinGraph::Width(RelSet set) const {
  double w = 0.0;
  for (int i = 0; i < num_relations(); ++i) {
    if (set & (RelSet{1} << i)) {
      w += rels_[static_cast<size_t>(i)].width_contribution;
    }
  }
  return w;
}

}  // namespace xdbft::optimizer
