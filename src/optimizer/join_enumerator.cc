#include "optimizer/join_enumerator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace xdbft::optimizer {

int JoinTreeArena::Leaf(int relation) {
  nodes_.push_back(JoinTreeNode{relation, -1, -1});
  return static_cast<int>(nodes_.size()) - 1;
}

int JoinTreeArena::Join(int left, int right) {
  nodes_.push_back(JoinTreeNode{-1, left, right});
  return static_cast<int>(nodes_.size()) - 1;
}

RelSet JoinTreeArena::Relations(int root) const {
  const JoinTreeNode& n = node(root);
  if (n.is_leaf()) return RelSet{1} << n.relation;
  return Relations(n.left) | Relations(n.right);
}

std::string JoinTreeArena::ToString(int root, const JoinGraph& graph) const {
  const JoinTreeNode& n = node(root);
  if (n.is_leaf()) return graph.relation(n.relation).name;
  return "(" + ToString(n.left, graph) + " " + ToString(n.right, graph) +
         ")";
}

namespace {

double NodesD(const PhysicalCostParams& p) {
  return static_cast<double>(p.num_nodes);
}

// Runtime cost of the join operator producing `out_rows` from children
// with cardinalities l_rows/r_rows (excluding the children's own costs).
double JoinOpCost(double l_rows, double r_rows, double out_rows,
                  const PhysicalCostParams& p) {
  const double build = std::min(l_rows, r_rows);
  const double probe = std::max(l_rows, r_rows);
  return build / NodesD(p) / p.build_rows_per_sec +
         probe / NodesD(p) / p.probe_rows_per_sec +
         out_rows / NodesD(p) / p.output_rows_per_sec;
}

double MatCost(double rows, double width, const PhysicalCostParams& p) {
  return p.storage_latency_seconds + rows * width / p.storage_bandwidth_bps;
}

}  // namespace

double TreeCost(const JoinTreeArena& arena, int root, const JoinGraph& graph,
                const PhysicalCostParams& params) {
  const JoinTreeNode& n = arena.node(root);
  if (n.is_leaf()) return graph.relation(n.relation).scan_cost;
  const double l_cost = TreeCost(arena, n.left, graph, params);
  const double r_cost = TreeCost(arena, n.right, graph, params);
  const RelSet ls = arena.Relations(n.left);
  const RelSet rs = arena.Relations(n.right);
  const double l_rows = graph.Cardinality(ls);
  const double r_rows = graph.Cardinality(rs);
  const double out_rows = graph.Cardinality(ls | rs);
  return l_cost + r_cost + JoinOpCost(l_rows, r_rows, out_rows, params);
}

Result<std::vector<int>> EnumerateAllJoinTrees(const JoinGraph& graph,
                                               JoinTreeArena* arena) {
  XDBFT_RETURN_NOT_OK(graph.Validate());
  if (arena == nullptr) return Status::InvalidArgument("arena is null");
  const int n = graph.num_relations();
  const RelSet all = graph.AllRels();

  // trees[set] = roots of all join trees covering exactly `set`.
  std::map<RelSet, std::vector<int>> trees;
  for (int i = 0; i < n; ++i) {
    trees[RelSet{1} << i] = {arena->Leaf(i)};
  }

  // Enumerate subsets in increasing popcount via increasing numeric order
  // (every proper subset of S is numerically smaller than S).
  for (RelSet set = 1; set <= all; ++set) {
    if (std::popcount(set) < 2 || !graph.Connected(set)) continue;
    auto& out = trees[set];
    // Every ordered split (S1, S2): S1 is a non-empty proper subset; the
    // complement is S2. Ordered pairs are enumerated naturally since both
    // (S1, S2) and (S2, S1) occur as S1 ranges over proper subsets.
    for (RelSet s1 = (set - 1) & set; s1 != 0; s1 = (s1 - 1) & set) {
      const RelSet s2 = set & ~s1;
      if (s2 == 0) continue;
      if (!graph.Connected(s1) || !graph.Connected(s2)) continue;
      if (!graph.HasCrossEdge(s1, s2)) continue;  // no cross products
      const auto it1 = trees.find(s1);
      const auto it2 = trees.find(s2);
      if (it1 == trees.end() || it2 == trees.end()) continue;
      for (int t1 : it1->second) {
        for (int t2 : it2->second) {
          out.push_back(arena->Join(t1, t2));
        }
      }
    }
  }
  auto it = trees.find(all);
  if (it == trees.end() || it->second.empty()) {
    return Status::Internal("no join tree covers all relations");
  }
  return it->second;
}

Result<std::vector<int>> EnumerateTopKJoinTrees(
    const JoinGraph& graph, int top_k, const PhysicalCostParams& params,
    JoinTreeArena* arena) {
  XDBFT_RETURN_NOT_OK(graph.Validate());
  if (arena == nullptr) return Status::InvalidArgument("arena is null");
  if (top_k <= 0) return Status::InvalidArgument("top_k must be positive");
  const int n = graph.num_relations();
  const RelSet all = graph.AllRels();

  struct Entry {
    int root;
    double cost;
  };
  std::map<RelSet, std::vector<Entry>> best;  // sorted by cost, size<=top_k
  auto insert = [&](RelSet set, int root, double cost) {
    auto& v = best[set];
    const auto pos = std::lower_bound(
        v.begin(), v.end(), cost,
        [](const Entry& e, double c) { return e.cost < c; });
    if (v.size() >= static_cast<size_t>(top_k) && pos == v.end()) return;
    v.insert(pos, Entry{root, cost});
    if (v.size() > static_cast<size_t>(top_k)) v.pop_back();
  };

  for (int i = 0; i < n; ++i) {
    const RelSet s = RelSet{1} << i;
    insert(s, arena->Leaf(i), graph.relation(i).scan_cost);
  }

  for (RelSet set = 1; set <= all; ++set) {
    if (std::popcount(set) < 2 || !graph.Connected(set)) continue;
    const double out_rows = graph.Cardinality(set);
    for (RelSet s1 = (set - 1) & set; s1 != 0; s1 = (s1 - 1) & set) {
      const RelSet s2 = set & ~s1;
      // Enumerate each unordered split once; emit both orders below.
      if (s1 < s2) continue;
      if (s2 == 0 || !graph.Connected(s1) || !graph.Connected(s2)) continue;
      if (!graph.HasCrossEdge(s1, s2)) continue;
      const auto it1 = best.find(s1);
      const auto it2 = best.find(s2);
      if (it1 == best.end() || it2 == best.end()) continue;
      const double l_rows = graph.Cardinality(s1);
      const double r_rows = graph.Cardinality(s2);
      const double op_cost = JoinOpCost(l_rows, r_rows, out_rows, params);
      for (const Entry& e1 : it1->second) {
        for (const Entry& e2 : it2->second) {
          // One tree per unordered split: the build/probe mirror has
          // identical cost (side selection is by cardinality), so
          // emitting both would only crowd the top-k with duplicates.
          const double cost = e1.cost + e2.cost + op_cost;
          insert(set, arena->Join(e1.root, e2.root), cost);
        }
      }
    }
  }
  const auto it = best.find(all);
  if (it == best.end() || it->second.empty()) {
    return Status::Internal("no join tree covers all relations");
  }
  std::vector<int> roots;
  roots.reserve(it->second.size());
  for (const Entry& e : it->second) roots.push_back(e.root);
  return roots;
}

namespace {

// Recursively emits the tree into the plan; returns the operator id.
plan::OpId EmitNode(const JoinTreeArena& arena, int root,
                    const JoinGraph& graph, const PhysicalCostParams& params,
                    plan::Plan* plan) {
  const JoinTreeNode& n = arena.node(root);
  if (n.is_leaf()) {
    const Relation& rel = graph.relation(n.relation);
    plan::PlanNode node;
    node.type = plan::OpType::kTableScan;
    node.label = "Scan(" + rel.name + ")";
    node.runtime_cost = rel.scan_cost;
    node.materialize_cost = MatCost(rel.rows, rel.scan_width, params);
    node.output_rows = rel.rows;
    node.row_width_bytes = rel.scan_width;
    node.constraint = plan::MatConstraint::kNeverMaterialize;
    return plan->AddNode(std::move(node));
  }
  const plan::OpId l = EmitNode(arena, n.left, graph, params, plan);
  const plan::OpId r = EmitNode(arena, n.right, graph, params, plan);
  const RelSet ls = arena.Relations(n.left);
  const RelSet rs = arena.Relations(n.right);
  const double l_rows = graph.Cardinality(ls);
  const double r_rows = graph.Cardinality(rs);
  const double out_rows = graph.Cardinality(ls | rs);
  const double out_width = graph.Width(ls | rs);
  plan::PlanNode node;
  node.type = plan::OpType::kHashJoin;
  node.label = "Join" + arena.ToString(root, graph);
  node.runtime_cost = JoinOpCost(l_rows, r_rows, out_rows, params);
  node.materialize_cost = MatCost(out_rows, out_width, params);
  node.output_rows = out_rows;
  node.row_width_bytes = out_width;
  node.inputs = {l, r};
  return plan->AddNode(std::move(node));
}

}  // namespace

Result<plan::Plan> EmitPlan(const JoinTreeArena& arena, int root,
                            const JoinGraph& graph,
                            const PhysicalCostParams& params,
                            const PlanEmissionOptions& options) {
  XDBFT_RETURN_NOT_OK(graph.Validate());
  plan::Plan plan(options.plan_name);
  const plan::OpId top = EmitNode(arena, root, graph, params, &plan);
  if (options.add_aggregate_sink) {
    const double in_rows = plan.node(top).output_rows;
    plan::PlanNode agg;
    agg.type = plan::OpType::kHashAggregate;
    agg.label = "Agg";
    agg.runtime_cost = in_rows / NodesD(params) / params.agg_rows_per_sec;
    agg.materialize_cost =
        MatCost(options.aggregate_rows, options.aggregate_width, params);
    agg.output_rows = options.aggregate_rows;
    agg.row_width_bytes = options.aggregate_width;
    agg.inputs = {top};
    plan.AddNode(std::move(agg));
  }
  XDBFT_RETURN_NOT_OK(plan.Validate());
  return plan;
}

}  // namespace xdbft::optimizer
