// Join graphs and cardinality estimation for join-order enumeration
// (paper §3.2: phase 1 enumerates the top-k plans by failure-free cost;
// §5.5 enumerates all 1344 join orders of TPC-H Q5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace xdbft::optimizer {

/// \brief Bitmask over relations of a join graph (max 20 relations).
using RelSet = uint32_t;

/// \brief One base relation (with local predicates already applied).
struct Relation {
  std::string name;
  /// Output cardinality of the (filtered) scan.
  double rows = 0.0;
  /// Runtime cost tr of the scan (partition-parallel, seconds).
  double scan_cost = 0.0;
  /// Bytes this relation's columns contribute to a joined row.
  double width_contribution = 40.0;
  /// Row width of the base relation itself.
  double scan_width = 100.0;
};

/// \brief An equi-join edge with its selectivity: |L join R| =
/// |L| * |R| * selectivity.
struct JoinEdge {
  int left = 0;
  int right = 0;
  double selectivity = 1.0;
  std::string predicate;
};

/// \brief Undirected join graph with independence-assumption cardinality
/// estimation over arbitrary connected sub-sets.
class JoinGraph {
 public:
  int AddRelation(Relation r);
  Status AddEdge(int left, int right, double selectivity,
                 std::string predicate = "");

  int num_relations() const { return static_cast<int>(rels_.size()); }
  const Relation& relation(int i) const {
    return rels_[static_cast<size_t>(i)];
  }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  Status Validate() const;

  /// \brief True iff the relations in `set` form a connected subgraph.
  bool Connected(RelSet set) const;

  /// \brief True iff at least one edge crosses between `a` and `b`.
  bool HasCrossEdge(RelSet a, RelSet b) const;

  /// \brief Estimated cardinality of joining all relations in `set`:
  /// product of relation rows times the selectivity of every edge whose
  /// endpoints both lie in `set` (classic independence assumption [14]).
  double Cardinality(RelSet set) const;

  /// \brief Product of selectivities of edges crossing between `a` and
  /// `b` (1.0 if none).
  double CrossSelectivity(RelSet a, RelSet b) const;

  /// \brief Sum of width contributions of the relations in `set`.
  double Width(RelSet set) const;

  /// \brief Mask containing every relation.
  RelSet AllRels() const {
    return static_cast<RelSet>((uint64_t{1} << rels_.size()) - 1);
  }

 private:
  std::vector<Relation> rels_;
  std::vector<JoinEdge> edges_;
};

}  // namespace xdbft::optimizer
