// Data-derived statistics: per-column histograms and distinct-value
// counts built from real tables, and the classic estimators on top of
// them (predicate selectivity, equi-join cardinality under the
// containment assumption). This is the "statistics about the query"
// provider the paper assumes of a cost-based optimizer (§2.1: estimates
// "calculated based on input/output cardinalities of each operator
// [Moerkotte 14]").
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/operators.h"

namespace xdbft::optimizer {

/// \brief Statistics of one column.
struct ColumnStats {
  std::string name;
  exec::ValueType type = exec::ValueType::kNull;
  size_t row_count = 0;
  size_t null_count = 0;
  /// Exact number of distinct non-null values.
  size_t distinct_count = 0;
  /// Numeric columns only: min/max and an equi-width histogram over
  /// [min, max] (bucket i counts values in its sub-range).
  double min = 0.0;
  double max = 0.0;
  std::vector<size_t> histogram;

  bool is_numeric() const {
    return type == exec::ValueType::kInt64 ||
           type == exec::ValueType::kDouble;
  }
};

/// \brief Statistics of one table.
struct TableStats {
  size_t row_count = 0;
  std::vector<ColumnStats> columns;

  Result<const ColumnStats*> Find(const std::string& column) const;
};

/// \brief Scan a table and build statistics for every column.
/// `histogram_buckets` controls numeric histogram resolution.
Result<TableStats> AnalyzeTable(const exec::Table& table,
                                int histogram_buckets = 64);

/// \brief Selectivity of `column < value` (fraction of rows), estimated
/// from the histogram with intra-bucket linear interpolation. Non-numeric
/// columns fall back to 1/3 (System-R style).
double EstimateLessThan(const ColumnStats& stats, double value);

/// \brief Selectivity of `column = value`: histogram-bucket density over
/// the bucket's distinct values for numerics, 1/NDV otherwise.
double EstimateEquals(const ColumnStats& stats, double value);

/// \brief Selectivity of `lo <= column < hi`.
double EstimateRange(const ColumnStats& stats, double lo, double hi);

/// \brief Equi-join output cardinality |L join R| under the containment
/// assumption: |L| * |R| / max(ndv(L.key), ndv(R.key)).
double EstimateJoinCardinality(size_t left_rows, const ColumnStats& left_key,
                               size_t right_rows,
                               const ColumnStats& right_key);

}  // namespace xdbft::optimizer
