// Join-order enumeration: exhaustive enumeration of all connected bushy
// join trees without cross products (for the pruning experiment, §5.5) and
// a DPsub-based enumerator that keeps the top-k cheapest plans per subset
// (phase 1 of enumFTPlans, §3.2).
#pragma once

#include <vector>

#include "common/result.h"
#include "optimizer/join_graph.h"
#include "plan/plan.h"

namespace xdbft::optimizer {

/// \brief A join tree node stored in a JoinTreeArena. Leaves reference a
/// relation; inner nodes reference two children.
struct JoinTreeNode {
  int relation = -1;  // >= 0 for leaves
  int left = -1;
  int right = -1;
  bool is_leaf() const { return relation >= 0; }
};

/// \brief Arena holding join-tree nodes; trees are identified by the index
/// of their root node.
class JoinTreeArena {
 public:
  int Leaf(int relation);
  int Join(int left, int right);

  const JoinTreeNode& node(int i) const {
    return nodes_[static_cast<size_t>(i)];
  }
  size_t size() const { return nodes_.size(); }

  /// \brief Set of relations under the tree rooted at `root`.
  RelSet Relations(int root) const;

  /// \brief "(((R N) C) O)" style rendering.
  std::string ToString(int root, const JoinGraph& graph) const;

 private:
  std::vector<JoinTreeNode> nodes_;
};

/// \brief Physical cost parameters used to cost join trees and emit plans
/// (same semantics as tpch::TpchPlanConfig's rates).
struct PhysicalCostParams {
  int num_nodes = 10;
  double scan_rows_per_sec = 400e3;
  double probe_rows_per_sec = 80e3;
  double build_rows_per_sec = 300e3;
  double agg_rows_per_sec = 200e3;
  double output_rows_per_sec = 1e6;
  double storage_bandwidth_bps = 16.5 * 1024 * 1024;
  double storage_latency_seconds = 0.05;
};

/// \brief Failure-free cost of the tree rooted at `root`: sum of scan,
/// build, probe and output costs over all operators (the phase-1 metric).
double TreeCost(const JoinTreeArena& arena, int root, const JoinGraph& graph,
                const PhysicalCostParams& params);

/// \brief Enumerate every connected bushy join tree without cross products.
/// Left/right order matters (build vs probe side), so TPC-H Q5 yields the
/// paper's 1344 join orders. Returns the roots in `arena`.
Result<std::vector<int>> EnumerateAllJoinTrees(const JoinGraph& graph,
                                               JoinTreeArena* arena);

/// \brief DPsub keeping the `top_k` cheapest trees per relation subset;
/// returns the top-k roots for the full relation set, cheapest first.
Result<std::vector<int>> EnumerateTopKJoinTrees(
    const JoinGraph& graph, int top_k, const PhysicalCostParams& params,
    JoinTreeArena* arena);

/// \brief Options controlling plan emission.
struct PlanEmissionOptions {
  /// Append an aggregation sink consuming the final join (rows/width of
  /// the aggregate output).
  bool add_aggregate_sink = true;
  double aggregate_rows = 8.0;
  double aggregate_width = 112.0;
  std::string plan_name = "join-plan";
};

/// \brief Convert a join tree into an executable DAG plan: bound scans,
/// free hash joins (with tr/tm from `params`), optional aggregation sink.
Result<plan::Plan> EmitPlan(const JoinTreeArena& arena, int root,
                            const JoinGraph& graph,
                            const PhysicalCostParams& params,
                            const PlanEmissionOptions& options = {});

}  // namespace xdbft::optimizer
